// Package sha1 implements the SHA-1 hash with an explicitly resumable,
// block-oriented state.
//
// TyTAN's RTM task "must be interruptible during the hash calculation"
// (§3): measurement of a task proceeds one 64-byte compression at a
// time, and the hash state survives arbitrarily many pre-emptions in
// between. The standard library's implementation hides its state behind
// an interface; this implementation exposes exactly the unit of work the
// scheduler interleaves — one compression — so the RTM task (see
// internal/trusted) can charge CostMeasurePerBlock per step and yield
// between steps.
//
// The paper uses SHA-1 and notes other hash algorithms work too; the
// choice is historical (2015) and this package is faithful to it. It is
// verified bit-for-bit against crypto/sha1 in the tests.
package sha1

import "encoding/binary"

// Size is the digest length in bytes.
const Size = 20

// BlockSize is the compression block length in bytes.
const BlockSize = 64

// Digest is a SHA-1 digest.
type Digest [Size]byte

// State is a running SHA-1 computation. The zero value is not valid;
// use New. State is a plain value: copying it snapshots the
// computation, which is how measurement survives task unload/reload
// races (the RTM clones the state before risky steps).
type State struct {
	h   [5]uint32
	len uint64
	buf [BlockSize]byte
	n   int
}

// New returns an initialized SHA-1 state.
func New() State {
	return State{h: [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}}
}

// Blocks returns the number of full compressions performed so far.
func (s *State) Blocks() uint64 { return s.len / BlockSize }

// BufferedBytes returns how many bytes are waiting for the next full
// block.
func (s *State) BufferedBytes() int { return s.n }

// Write absorbs p into the state, compressing as full blocks form. It
// never fails; the error return satisfies io.Writer.
func (s *State) Write(p []byte) (int, error) {
	total := len(p)
	s.len += uint64(total)
	if s.n > 0 {
		c := copy(s.buf[s.n:], p)
		s.n += c
		p = p[c:]
		if s.n == BlockSize {
			s.compress(s.buf[:])
			s.n = 0
		}
	}
	for len(p) >= BlockSize {
		s.compress(p[:BlockSize])
		p = p[BlockSize:]
	}
	s.n += copy(s.buf[s.n:], p)
	return total, nil
}

// WriteBlock absorbs exactly one aligned 64-byte block. It panics if
// bytes are currently buffered (mixed use with a partial Write) or if
// the block is not 64 bytes: the RTM task feeds the measurement in
// whole blocks by construction, so a violation is a programming error.
func (s *State) WriteBlock(block []byte) {
	if s.n != 0 {
		panic("sha1: WriteBlock with buffered bytes")
	}
	if len(block) != BlockSize {
		panic("sha1: WriteBlock of wrong size")
	}
	s.len += BlockSize
	s.compress(block)
}

// Sum finalizes a copy of the state and returns the digest. The state
// itself remains usable for further writes (finalization does not
// mutate it).
func (s *State) Sum() Digest {
	c := *s // finalize a copy
	var pad [BlockSize + 8]byte
	pad[0] = 0x80
	padLen := BlockSize - int((c.len+9)%BlockSize) + 1
	if padLen == BlockSize+1 {
		padLen = 1
	}
	binary.BigEndian.PutUint64(pad[padLen:], c.len*8)
	c.Write(pad[:padLen+8])
	var d Digest
	for i, v := range c.h {
		binary.BigEndian.PutUint32(d[i*4:], v)
	}
	return d
}

// Sum1 computes the SHA-1 digest of data in one call.
func Sum1(data []byte) Digest {
	s := New()
	s.Write(data)
	return s.Sum()
}

// compress performs one SHA-1 compression over a 64-byte block.
func (s *State) compress(block []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(block[i*4:])
	}
	for i := 16; i < 80; i++ {
		t := w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]
		w[i] = t<<1 | t>>31
	}
	a, b, c, d, e := s.h[0], s.h[1], s.h[2], s.h[3], s.h[4]
	// One loop per round group keeps the f/k selection out of the round
	// body (the per-round switch showed up in load benchmarks).
	for i := 0; i < 20; i++ {
		f := (b & c) | (^b & d)
		t := (a<<5 | a>>27) + f + e + 0x5A827999 + w[i]
		e, d, c, b, a = d, c, b<<30|b>>2, a, t
	}
	for i := 20; i < 40; i++ {
		f := b ^ c ^ d
		t := (a<<5 | a>>27) + f + e + 0x6ED9EBA1 + w[i]
		e, d, c, b, a = d, c, b<<30|b>>2, a, t
	}
	for i := 40; i < 60; i++ {
		f := (b & c) | (b & d) | (c & d)
		t := (a<<5 | a>>27) + f + e + 0x8F1BBCDC + w[i]
		e, d, c, b, a = d, c, b<<30|b>>2, a, t
	}
	for i := 60; i < 80; i++ {
		f := b ^ c ^ d
		t := (a<<5 | a>>27) + f + e + 0xCA62C1D6 + w[i]
		e, d, c, b, a = d, c, b<<30|b>>2, a, t
	}
	s.h[0] += a
	s.h[1] += b
	s.h[2] += c
	s.h[3] += d
	s.h[4] += e
}

// TruncatedID returns the first 8 bytes of the digest as a uint64. The
// TyTAN implementation "uses only the first 64 bits of the hash digest"
// as the task identity for performance (§6, footnote 9); the full
// digest remains available for remote attestation.
func (d Digest) TruncatedID() uint64 {
	return binary.BigEndian.Uint64(d[:8])
}
