package asm_test

import (
	"fmt"
	"log"

	"repro/internal/asm"
)

// Example assembles a tiny relocatable task and inspects the image: the
// ldi32 of a label produced a relocation entry the loader will rebase.
func Example() {
	image, err := asm.Assemble(`
.task "probe"
.entry main
.stack 128
.text
main:
    ldi32 r1, counter   ; absolute address -> relocation
    ld    r0, [r1+0]
    hlt
.data
counter:
    .word 7
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task %q: text %d B, data %d B, relocs %d\n",
		image.Name, len(image.Text), len(image.Data), len(image.Relocs))
	fmt.Printf("fixup at +%#x (%s)\n", image.Relocs[0].Offset, image.Relocs[0].Kind)
	// Output:
	// task "probe": text 16 B, data 4 B, relocs 1
	// fixup at +0x4 (imm32)
}
