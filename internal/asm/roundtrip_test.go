package asm_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// canonical returns one representative instruction per opcode (plus a
// few SP-flavoured variants), with only the fields that opcode encodes
// set — so decoded instructions compare equal with ==.
func canonical() []isa.Instruction {
	return []isa.Instruction{
		{Op: isa.OpNOP},
		{Op: isa.OpHLT},
		{Op: isa.OpRET},
		{Op: isa.OpMOV, Rd: isa.R1, Rs: isa.R2},
		{Op: isa.OpADD, Rd: isa.R0, Rs: isa.R3},
		{Op: isa.OpSUB, Rd: isa.R4, Rs: isa.R5},
		{Op: isa.OpAND, Rd: isa.R6, Rs: isa.R0},
		{Op: isa.OpOR, Rd: isa.R2, Rs: isa.R1},
		{Op: isa.OpXOR, Rd: isa.R3, Rs: isa.R3},
		{Op: isa.OpSHL, Rd: isa.R1, Rs: isa.R4},
		{Op: isa.OpSHR, Rd: isa.R5, Rs: isa.R2},
		{Op: isa.OpMUL, Rd: isa.R0, Rs: isa.R6},
		{Op: isa.OpCMP, Rd: isa.R1, Rs: isa.R0},
		{Op: isa.OpLDI, Rd: isa.R3, Imm: -42},
		{Op: isa.OpADDI, Rd: isa.R4, Imm: 100},
		{Op: isa.OpADDI, Rd: isa.SP, Imm: -8},
		{Op: isa.OpCMPI, Rd: isa.R1, Imm: 7},
		{Op: isa.OpLUI, Rd: isa.R2, Imm: -21555}, // uint16(0xabcd), as LUI prints it
		{Op: isa.OpLDI32, Rd: isa.R5, Imm32: 0xDEADBEEF},
		{Op: isa.OpLDI32, Rd: isa.R0, Imm32: 0},
		{Op: isa.OpLD, Rd: isa.R0, Rs: isa.R1, Imm: 8},
		{Op: isa.OpLD, Rd: isa.R2, Rs: isa.SP, Imm: 4},
		{Op: isa.OpLDB, Rd: isa.R2, Rs: isa.R3, Imm: -1},
		{Op: isa.OpST, Rd: isa.R1, Rs: isa.R0, Imm: 4},
		{Op: isa.OpSTB, Rd: isa.R6, Rs: isa.R5, Imm: 0},
		{Op: isa.OpJMP, Imm: -3},
		{Op: isa.OpBEQ, Imm: 2},
		{Op: isa.OpBNE, Imm: 1},
		{Op: isa.OpBLT, Imm: 5},
		{Op: isa.OpBGE, Imm: -8},
		{Op: isa.OpBLTU, Imm: 3},
		{Op: isa.OpBGEU, Imm: -1},
		{Op: isa.OpCALL, Imm: 4},
		{Op: isa.OpJR, Rs: isa.R1},
		{Op: isa.OpCALLR, Rs: isa.R2},
		{Op: isa.OpPUSH, Rs: isa.R3},
		{Op: isa.OpPOP, Rd: isa.R4},
		{Op: isa.OpRDCYC, Rd: isa.R0},
		{Op: isa.OpSVC, Imm: 5},
	}
}

// assemble wraps one or more instruction lines in the minimal image
// scaffolding and returns the assembled text section.
func assemble(t *testing.T, lines []string) []byte {
	t.Helper()
	src := ".task \"rt\"\n.stack 64\n.text\n\t" + strings.Join(lines, "\n\t") + "\n"
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("reassemble failed:\n%s\n%v", src, err)
	}
	return im.Text
}

// TestInstructionRoundTrip: encode → decode → String() → assemble →
// encode is the identity for every opcode. This is the property the
// linter's disassembly column and the -d mode both lean on: what the
// tools print is real assembler syntax for the same bytes.
func TestInstructionRoundTrip(t *testing.T) {
	for _, in := range canonical() {
		enc := isa.Encode(nil, in)
		dec, n, err := isa.Decode(enc)
		if err != nil {
			t.Errorf("%v: decode: %v", in, err)
			continue
		}
		if int(n) != len(enc) {
			t.Errorf("%v: decode consumed %d of %d bytes", in, n, len(enc))
			continue
		}
		if dec != in {
			t.Errorf("encode/decode not identity: %+v != %+v", dec, in)
			continue
		}
		line := dec.String()
		re := assemble(t, []string{line})
		if len(re) < len(enc) || !bytes.Equal(re[:len(enc)], enc) {
			t.Errorf("%q reassembled to % x, want % x", line, re, enc)
		}
	}
}

// TestStreamRoundTrip: a whole instruction stream survives
// Disassemble → strip addresses → reassemble byte-identically.
func TestStreamRoundTrip(t *testing.T) {
	var blob []byte
	for _, in := range canonical() {
		blob = isa.Encode(blob, in)
	}
	var lines []string
	for _, line := range strings.Split(strings.TrimSuffix(isa.Disassemble(0, blob), "\n"), "\n") {
		_, ins, ok := strings.Cut(line, ":\t")
		if !ok {
			t.Fatalf("unexpected disassembly line %q", line)
		}
		lines = append(lines, ins)
	}
	re := assemble(t, lines)
	if !bytes.Equal(re, blob) {
		t.Fatalf("stream did not round-trip:\n got % x\nwant % x", re, blob)
	}
}

// TestDataWordRoundTrip: undecodable words disassemble as .word
// directives that reassemble to the same bytes (the data-in-text path).
func TestDataWordRoundTrip(t *testing.T) {
	blob := isa.Encode(nil, isa.Instruction{Op: isa.OpHLT})
	blob = append(blob, 0x1F, 0x00, 0x00, 0xFF) // 0xff00001f: no such opcode
	var lines []string
	for _, line := range strings.Split(strings.TrimSuffix(isa.Disassemble(0, blob), "\n"), "\n") {
		_, ins, _ := strings.Cut(line, ":\t")
		lines = append(lines, ins)
	}
	re := assemble(t, lines)
	if !bytes.Equal(re, blob) {
		t.Fatalf(".word did not round-trip:\n got % x\nwant % x\nlines: %q", re, blob, lines)
	}
}
