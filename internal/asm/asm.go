// Package asm implements a two-pass assembler that translates text
// assembly for the simulated core (see internal/isa) into relocatable
// TELF images (see internal/telf).
//
// The assembler is the user-visible half of the "TyTAN tool chain" the
// paper mentions in §4: task developers write position-independent
// assembly, and every absolute address reference (an LDI32 immediate or
// a .word holding a label) becomes a relocation entry that the loader
// fixes up at load time and the RTM task reverts before measurement.
//
// # Syntax
//
// One statement per line. Comments start with ';' or '#'. Sections are
// selected with .text and .data; labels end with ':'.
//
//	.task  "pedal"      ; image name
//	.entry main         ; entry point label (in .text)
//	.stack 256          ; stack reservation in bytes
//	.bss   64           ; zero-initialized region size in bytes
//
//	.text
//	main:
//	    ldi32 r1, buf       ; absolute address -> relocation
//	    ldi32 r2, buf+4     ; label+offset -> relocation with addend
//	    ld    r0, [r1+0]
//	    cmpi  r0, 0
//	    beq   done
//	    svc   1
//	done:
//	    hlt
//
//	.data
//	buf:
//	    .word 0
//	    .word main          ; data word holding an address -> relocation
//	    .byte 1, 2, 3
//	    .space 9
//	    .align 4
//
// Numeric immediates accept decimal and 0x hexadecimal, with optional
// leading '-'. Further directives: .equ NAME, value defines a constant;
// .ascii "text" emits raw bytes. Pseudo-instructions li (immediate of
// any width or a label), clr, inc, dec, bz and bnz expand to real
// instructions during assembly.
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/telf"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type section int

const (
	secText section = iota
	secData
)

// stmt is one parsed statement, retained between the two passes.
type stmt struct {
	line    int
	sec     section
	offset  uint32 // offset within its section
	width   uint32 // bytes emitted
	mn      string // mnemonic or directive (lower case)
	args    []string
	isDir   bool
	isLabel bool
}

// Assemble translates source into a TELF image.
func Assemble(source string) (*telf.Image, error) {
	a := &assembler{
		labels: make(map[string]labelRef),
		equs:   make(map[string]int64),
	}
	if err := a.parse(source); err != nil {
		return nil, err
	}
	if err := a.emit(); err != nil {
		return nil, err
	}
	// Sections may be interleaved in the source, so relocations are not
	// necessarily recorded in offset order; TELF requires it.
	sort.Slice(a.relocs, func(i, j int) bool { return a.relocs[i].Offset < a.relocs[j].Offset })
	im := &telf.Image{
		Name:      a.name,
		Entry:     a.entry,
		Text:      a.text,
		Data:      a.data,
		BSSSize:   a.bssSize,
		StackSize: a.stackSize,
		Relocs:    a.relocs,
	}
	if im.StackSize == 0 {
		im.StackSize = DefaultStackSize
	}
	if err := im.Validate(); err != nil {
		return nil, fmt.Errorf("asm: produced invalid image: %w", err)
	}
	return im, nil
}

// DefaultStackSize is used when the source has no .stack directive.
const DefaultStackSize = 256

type labelRef struct {
	sec    section
	offset uint32
	line   int
}

type assembler struct {
	name       string
	entryLabel string
	entryLine  int
	entry      uint32
	stackSize  uint32
	bssSize    uint32

	stmts  []stmt
	labels map[string]labelRef
	equs   map[string]int64

	textSize uint32
	dataSize uint32

	text   []byte
	data   []byte
	relocs []telf.Reloc
}

// parse is pass one: tokenize, size every statement, and record label
// offsets.
func (a *assembler) parse(source string) error {
	offs := map[section]*uint32{secText: new(uint32), secData: new(uint32)}
	sec := secText
	for i, raw := range strings.Split(source, "\n") {
		line := i + 1
		s := raw
		if j := strings.IndexAny(s, ";#"); j >= 0 {
			s = s[:j]
		}
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		// Labels: possibly followed by a statement on the same line. A
		// colon only introduces a label when the text before it is a
		// valid identifier — otherwise it belongs to an operand (e.g. a
		// quoted .task name containing ':').
		for {
			j := strings.Index(s, ":")
			if j < 0 {
				break
			}
			label := strings.TrimSpace(s[:j])
			if !validIdent(label) {
				break
			}
			if _, dup := a.labels[label]; dup {
				return errf(line, "duplicate label %q", label)
			}
			a.labels[label] = labelRef{sec: sec, offset: *offs[sec], line: line}
			s = strings.TrimSpace(s[j+1:])
			if s == "" {
				break
			}
		}
		if s == "" {
			continue
		}
		mn, rest, _ := strings.Cut(s, " ")
		mn = strings.ToLower(strings.TrimSpace(mn))
		args := splitArgs(rest)

		if strings.HasPrefix(mn, ".") {
			w, newSec, err := a.directiveWidth(line, sec, mn, args)
			if err != nil {
				return err
			}
			if newSec != sec {
				sec = newSec
				continue
			}
			if w > 0 {
				a.stmts = append(a.stmts, stmt{line: line, sec: sec, offset: *offs[sec], width: w, mn: mn, args: args, isDir: true})
				*offs[sec] += w
			}
			continue
		}

		w, err := a.instWidth(line, mn, args)
		if err != nil {
			return err
		}
		if sec != secText {
			return errf(line, "instruction %q outside .text", mn)
		}
		a.stmts = append(a.stmts, stmt{line: line, sec: sec, offset: *offs[sec], width: w, mn: mn, args: args})
		*offs[sec] += w
	}
	a.textSize = *offs[secText]
	a.dataSize = *offs[secData]
	return nil
}

// directiveWidth handles pass-one processing of a directive: section
// switches, metadata, and the emitted width of data directives.
func (a *assembler) directiveWidth(line int, sec section, mn string, args []string) (width uint32, newSec section, err error) {
	newSec = sec
	switch mn {
	case ".text":
		return 0, secText, nil
	case ".data":
		return 0, secData, nil
	case ".task":
		if len(args) != 1 {
			return 0, sec, errf(line, ".task wants one argument")
		}
		a.name = strings.Trim(args[0], `"`)
		return 0, sec, nil
	case ".entry":
		if len(args) != 1 {
			return 0, sec, errf(line, ".entry wants one label")
		}
		a.entryLabel = args[0]
		a.entryLine = line
		return 0, sec, nil
	case ".stack", ".bss":
		if len(args) != 1 {
			return 0, sec, errf(line, "%s wants one size", mn)
		}
		v, perr := parseNum(args[0])
		if perr != nil || v < 0 {
			return 0, sec, errf(line, "%s: bad size %q", mn, args[0])
		}
		if mn == ".stack" {
			a.stackSize = uint32(v)
		} else {
			a.bssSize = uint32(v)
		}
		return 0, sec, nil
	case ".equ":
		if len(args) != 2 {
			return 0, sec, errf(line, ".equ wants NAME, value")
		}
		if !validIdent(args[0]) {
			return 0, sec, errf(line, ".equ: bad name %q", args[0])
		}
		v, perr := a.evalNum(args[1])
		if perr != nil {
			return 0, sec, errf(line, ".equ: bad value %q", args[1])
		}
		if _, dup := a.equs[args[0]]; dup {
			return 0, sec, errf(line, ".equ: %q redefined", args[0])
		}
		a.equs[args[0]] = v
		return 0, sec, nil
	case ".ascii":
		str, perr := parseString(args)
		if perr != nil {
			return 0, sec, errf(line, ".ascii: %v", perr)
		}
		return uint32(len(str)), sec, nil
	case ".word":
		if len(args) == 0 {
			return 0, sec, errf(line, ".word wants at least one value")
		}
		return uint32(4 * len(args)), sec, nil
	case ".byte":
		if len(args) == 0 {
			return 0, sec, errf(line, ".byte wants at least one value")
		}
		return uint32(len(args)), sec, nil
	case ".space":
		if len(args) != 1 {
			return 0, sec, errf(line, ".space wants one size")
		}
		v, perr := parseNum(args[0])
		if perr != nil || v < 0 {
			return 0, sec, errf(line, ".space: bad size %q", args[0])
		}
		return uint32(v), sec, nil
	case ".align":
		if len(args) != 1 {
			return 0, sec, errf(line, ".align wants one value")
		}
		v, perr := parseNum(args[0])
		if perr != nil || v <= 0 {
			return 0, sec, errf(line, ".align: bad value %q", args[0])
		}
		// Width depends on the current offset; compute via a synthetic
		// statement so pass two re-derives the same padding.
		cur := a.curOffset(sec)
		pad := (uint32(v) - cur%uint32(v)) % uint32(v)
		return pad, sec, nil
	default:
		return 0, sec, errf(line, "unknown directive %q", mn)
	}
}

// curOffset returns the current emit offset of a section during pass one.
func (a *assembler) curOffset(sec section) uint32 {
	var off uint32
	for _, s := range a.stmts {
		if s.sec == sec {
			off = s.offset + s.width
		}
	}
	return off
}

var mnemonics = map[string]isa.Op{
	"nop": isa.OpNOP, "hlt": isa.OpHLT, "mov": isa.OpMOV, "ldi": isa.OpLDI,
	"lui": isa.OpLUI, "ldi32": isa.OpLDI32, "ld": isa.OpLD, "st": isa.OpST,
	"ldb": isa.OpLDB, "stb": isa.OpSTB, "add": isa.OpADD, "sub": isa.OpSUB,
	"and": isa.OpAND, "or": isa.OpOR, "xor": isa.OpXOR, "shl": isa.OpSHL,
	"shr": isa.OpSHR, "addi": isa.OpADDI, "mul": isa.OpMUL, "cmp": isa.OpCMP,
	"cmpi": isa.OpCMPI, "jmp": isa.OpJMP, "beq": isa.OpBEQ, "bne": isa.OpBNE,
	"blt": isa.OpBLT, "bge": isa.OpBGE, "bltu": isa.OpBLTU, "bgeu": isa.OpBGEU,
	"jr": isa.OpJR, "call": isa.OpCALL, "callr": isa.OpCALLR, "ret": isa.OpRET,
	"push": isa.OpPUSH, "pop": isa.OpPOP, "svc": isa.OpSVC, "rdcyc": isa.OpRDCYC,
}

// pseudoOps maps pseudo-instructions to their expansion. Real
// tool chains provide these conveniences; ours does too so example
// tasks read naturally.
var pseudoOps = map[string]bool{
	"li": true, "clr": true, "inc": true, "dec": true, "bz": true, "bnz": true,
}

// instWidth sizes one instruction (pass one). Pseudo-instructions size
// according to their expansion: li picks LDI for small immediates and
// LDI32 otherwise.
func (a *assembler) instWidth(line int, mn string, args []string) (uint32, error) {
	if pseudoOps[mn] {
		switch mn {
		case "li":
			if len(args) != 2 {
				return 0, errf(line, "li wants rd, value")
			}
			if v, err := a.evalNum(args[1]); err == nil && v >= -32768 && v <= 32767 {
				return 4, nil
			}
			return 8, nil // ldi32 (labels and wide constants)
		default:
			return 4, nil
		}
	}
	op, ok := mnemonics[mn]
	if !ok {
		return 0, errf(line, "unknown mnemonic %q", mn)
	}
	return op.Width(), nil
}

// expandPseudo rewrites a pseudo-instruction statement into its real
// mnemonic and arguments (pass two).
func (a *assembler) expandPseudo(s *stmt) error {
	switch s.mn {
	case "li":
		if v, err := a.evalNum(s.args[1]); err == nil && v >= -32768 && v <= 32767 {
			s.mn = "ldi"
		} else {
			s.mn = "ldi32"
		}
	case "clr":
		if len(s.args) != 1 {
			return errf(s.line, "clr wants one register")
		}
		s.mn = "ldi"
		s.args = []string{s.args[0], "0"}
	case "inc", "dec":
		if len(s.args) != 1 {
			return errf(s.line, "%s wants one register", s.mn)
		}
		imm := "1"
		if s.mn == "dec" {
			imm = "-1"
		}
		s.mn = "addi"
		s.args = []string{s.args[0], imm}
	case "bz":
		s.mn = "beq"
	case "bnz":
		s.mn = "bne"
	}
	return nil
}

// emit is pass two: encode instructions and data with all labels
// resolved, recording relocations for absolute references.
func (a *assembler) emit() error {
	if a.entryLabel != "" {
		ref, ok := a.labels[a.entryLabel]
		if !ok {
			return errf(a.entryLine, ".entry: undefined label %q", a.entryLabel)
		}
		if ref.sec != secText {
			return errf(a.entryLine, ".entry: label %q not in .text", a.entryLabel)
		}
		a.entry = ref.offset
	}
	a.text = make([]byte, 0, a.textSize)
	a.data = make([]byte, 0, a.dataSize)
	for _, s := range a.stmts {
		var err error
		if s.isDir {
			err = a.emitDirective(s)
		} else {
			err = a.emitInstruction(s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// imageOffset converts a label reference to its image-relative offset
// (data follows text in the loaded layout).
func (a *assembler) imageOffset(ref labelRef) uint32 {
	if ref.sec == secData {
		return a.textSize + ref.offset
	}
	return ref.offset
}

func (a *assembler) emitDirective(s stmt) error {
	buf := &a.text
	base := uint32(0)
	if s.sec == secData {
		buf = &a.data
		base = a.textSize
	}
	switch s.mn {
	case ".word":
		for _, arg := range s.args {
			off := base + uint32(len(*buf))
			v, reloc, err := a.resolveValue(s.line, arg, telf.RelWord)
			if err != nil {
				return err
			}
			if reloc {
				a.addReloc(off, telf.RelWord)
			}
			*buf = append(*buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
	case ".byte":
		for _, arg := range s.args {
			v, err := parseNum(arg)
			if err != nil || v < -128 || v > 255 {
				return errf(s.line, ".byte: bad value %q", arg)
			}
			*buf = append(*buf, byte(v))
		}
	case ".ascii":
		str, err := parseString(s.args)
		if err != nil {
			return errf(s.line, ".ascii: %v", err)
		}
		*buf = append(*buf, str...)
	case ".space", ".align":
		*buf = append(*buf, make([]byte, s.width)...)
	default:
		return errf(s.line, "internal: directive %q reached emit", s.mn)
	}
	return nil
}

func (a *assembler) addReloc(off uint32, kind telf.RelocKind) {
	a.relocs = append(a.relocs, telf.Reloc{Offset: off, Kind: kind})
}

// resolveValue evaluates a .word or LDI32 operand: a number, a label, or
// label+offset / label-offset. It reports whether the value needs a
// relocation (i.e. it is an image-relative address).
func (a *assembler) resolveValue(line int, arg string, kind telf.RelocKind) (uint32, bool, error) {
	if v, err := a.evalNum(arg); err == nil {
		return uint32(v), false, nil
	}
	label, addend, err := splitLabelAddend(arg)
	if err != nil {
		return 0, false, errf(line, "bad value %q: %v", arg, err)
	}
	ref, ok := a.labels[label]
	if !ok {
		return 0, false, errf(line, "undefined label %q", label)
	}
	return uint32(int64(a.imageOffset(ref)) + addend), true, nil
}

func (a *assembler) emitInstruction(s stmt) error {
	if pseudoOps[s.mn] {
		if err := a.expandPseudo(&s); err != nil {
			return err
		}
	}
	op := mnemonics[s.mn]
	in := isa.Instruction{Op: op}
	wantArgs := func(n int) error {
		if len(s.args) != n {
			return errf(s.line, "%s wants %d operand(s), got %d", s.mn, n, len(s.args))
		}
		return nil
	}
	var err error
	switch op {
	case isa.OpNOP, isa.OpHLT, isa.OpRET:
		err = wantArgs(0)
	case isa.OpMOV, isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpSHL, isa.OpSHR, isa.OpMUL, isa.OpCMP:
		if err = wantArgs(2); err == nil {
			in.Rd, err = parseReg(s.line, s.args[0])
			if err == nil {
				in.Rs, err = parseReg(s.line, s.args[1])
			}
		}
	case isa.OpLDI, isa.OpADDI, isa.OpCMPI, isa.OpLUI:
		if err = wantArgs(2); err == nil {
			in.Rd, err = parseReg(s.line, s.args[0])
			if err == nil {
				in.Imm, err = a.parseImm16(s.line, s.args[1], op == isa.OpLUI)
			}
		}
	case isa.OpLDI32:
		if err = wantArgs(2); err == nil {
			in.Rd, err = parseReg(s.line, s.args[0])
			if err == nil {
				var reloc bool
				in.Imm32, reloc, err = a.resolveValue(s.line, s.args[1], telf.RelImm32)
				if reloc {
					kind := telf.RelImm32
					if strings.ContainsAny(s.args[1], "+-") {
						kind = telf.RelImm32Add
					}
					// The relocated word is the second word of LDI32.
					a.addReloc(s.offset+4, kind)
				}
			}
		}
	case isa.OpLD, isa.OpLDB:
		if err = wantArgs(2); err == nil {
			in.Rd, err = parseReg(s.line, s.args[0])
			if err == nil {
				in.Rs, in.Imm, err = parseMem(s.line, s.args[1])
			}
		}
	case isa.OpST, isa.OpSTB:
		if err = wantArgs(2); err == nil {
			in.Rd, in.Imm, err = parseMem(s.line, s.args[0])
			if err == nil {
				in.Rs, err = parseReg(s.line, s.args[1])
			}
		}
	case isa.OpJMP, isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU,
		isa.OpBGEU, isa.OpCALL:
		if err = wantArgs(1); err == nil {
			in.Imm, err = a.branchTarget(s, s.args[0])
		}
	case isa.OpJR, isa.OpCALLR, isa.OpPUSH:
		if err = wantArgs(1); err == nil {
			in.Rs, err = parseReg(s.line, s.args[0])
		}
	case isa.OpPOP, isa.OpRDCYC:
		if err = wantArgs(1); err == nil {
			in.Rd, err = parseReg(s.line, s.args[0])
		}
	case isa.OpSVC:
		if err = wantArgs(1); err == nil {
			var v int64
			v, err = parseNum(s.args[0])
			if err != nil || v < 0 || v > 0xFFFF {
				err = errf(s.line, "svc: bad service number %q", s.args[0])
			} else {
				in.Imm = int16(uint16(v))
			}
		}
	default:
		err = errf(s.line, "internal: unhandled op %v", op)
	}
	if err != nil {
		return err
	}
	a.text = isa.Encode(a.text, in)
	return nil
}

// branchTarget resolves a branch operand: either a numeric word-relative
// offset or a .text label converted to a PC-relative word offset. The
// branch displacement is relative to the *next* instruction.
func (a *assembler) branchTarget(s stmt, arg string) (int16, error) {
	if v, err := parseNum(arg); err == nil {
		if v < -32768 || v > 32767 {
			return 0, errf(s.line, "branch offset %d out of range", v)
		}
		return int16(v), nil
	}
	ref, ok := a.labels[arg]
	if !ok {
		return 0, errf(s.line, "undefined label %q", arg)
	}
	if ref.sec != secText {
		return 0, errf(s.line, "branch to non-text label %q", arg)
	}
	next := int64(s.offset) + int64(s.width)
	delta := int64(ref.offset) - next
	if delta%4 != 0 {
		return 0, errf(s.line, "branch target %q not word-aligned", arg)
	}
	w := delta / 4
	if w < -32768 || w > 32767 {
		return 0, errf(s.line, "branch to %q out of range (%d words)", arg, w)
	}
	return int16(w), nil
}

// evalNum evaluates a numeric token, resolving .equ constants.
func (a *assembler) evalNum(s string) (int64, error) {
	if v, err := parseNum(s); err == nil {
		return v, nil
	}
	if v, ok := a.equs[strings.TrimSpace(s)]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("not a number or constant: %q", s)
}

// parseString joins comma-split args back and strips one level of
// double quotes. (Strings containing commas were split by the arg
// tokenizer; rejoining restores them.)
func parseString(args []string) ([]byte, error) {
	joined := strings.Join(args, ", ")
	joined = strings.TrimSpace(joined)
	if len(joined) < 2 || joined[0] != '"' || joined[len(joined)-1] != '"' {
		return nil, fmt.Errorf("want a double-quoted string, got %q", joined)
	}
	return []byte(joined[1 : len(joined)-1]), nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r == '.':
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseNum(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	switch {
	case strings.HasPrefix(s, "-"):
		neg = true
		s = s[1:]
	case strings.HasPrefix(s, "+"):
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 32)
	} else {
		v, err = strconv.ParseUint(s, 10, 32)
	}
	if err != nil {
		return 0, err
	}
	n := int64(v)
	if neg {
		n = -n
	}
	return n, nil
}

func parseReg(line int, s string) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "sp" {
		return isa.SP, nil
	}
	if len(s) == 2 && s[0] == 'r' && s[1] >= '0' && s[1] <= '7' {
		return isa.Reg(s[1] - '0'), nil
	}
	return 0, errf(line, "bad register %q", s)
}

func (a *assembler) parseImm16(line int, s string, unsigned bool) (int16, error) {
	v, err := a.evalNum(s)
	if err != nil {
		return 0, errf(line, "bad immediate %q", s)
	}
	if unsigned {
		if v < 0 || v > 0xFFFF {
			return 0, errf(line, "immediate %d out of unsigned 16-bit range", v)
		}
		return int16(uint16(v)), nil
	}
	if v < -32768 || v > 32767 {
		return 0, errf(line, "immediate %d out of signed 16-bit range", v)
	}
	return int16(v), nil
}

// parseMem parses a "[reg+off]" or "[reg-off]" or "[reg]" operand.
func parseMem(line int, s string) (isa.Reg, int16, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, errf(line, "bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	regPart := inner
	var offPart string
	if i := strings.IndexAny(inner[1:], "+-"); i >= 0 {
		regPart = inner[:i+1]
		offPart = inner[i+1:]
	}
	r, err := parseReg(line, regPart)
	if err != nil {
		return 0, 0, err
	}
	if offPart == "" {
		return r, 0, nil
	}
	off, err := parseNum(offPart)
	if err != nil || off < -32768 || off > 32767 {
		return 0, 0, errf(line, "bad memory offset %q", offPart)
	}
	return r, int16(off), nil
}

// splitLabelAddend splits "label", "label+N" or "label-N".
func splitLabelAddend(s string) (label string, addend int64, err error) {
	i := strings.IndexAny(s, "+-")
	if i < 0 {
		if !validIdent(s) {
			return "", 0, fmt.Errorf("not a label")
		}
		return s, 0, nil
	}
	label = s[:i]
	if !validIdent(label) {
		return "", 0, fmt.Errorf("not a label")
	}
	addend, err = parseNum(s[i:])
	if err != nil {
		return "", 0, fmt.Errorf("bad addend %q", s[i:])
	}
	return label, addend, nil
}
