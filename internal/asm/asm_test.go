package asm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/telf"
)

const sampleSource = `
; sample task: loop until data word is nonzero
.task  "pedal"
.entry main
.stack 512
.bss   64

.text
main:
    ldi32 r1, buf        ; reloc: imm32
    ldi32 r2, buf+4      ; reloc: imm32 with addend
loop:
    ld    r0, [r1+0]
    cmpi  r0, 0
    beq   loop
    svc   1
    hlt

.data
buf:
    .word 0
    .word main           ; reloc: word
    .byte 1, 2, 3
    .space 9
    .align 4
`

func mustAssemble(t *testing.T, src string) *telf.Image {
	t.Helper()
	im, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return im
}

func TestAssembleSample(t *testing.T) {
	im := mustAssemble(t, sampleSource)
	if im.Name != "pedal" {
		t.Errorf("Name = %q", im.Name)
	}
	if im.Entry != 0 {
		t.Errorf("Entry = %d, want 0", im.Entry)
	}
	if im.StackSize != 512 || im.BSSSize != 64 {
		t.Errorf("stack/bss = %d/%d", im.StackSize, im.BSSSize)
	}
	// Two 8-byte LDI32 + five 4-byte instructions = 36 bytes of text.
	if len(im.Text) != 36 {
		t.Errorf("text = %d bytes, want 36", len(im.Text))
	}
	// 2 words + 3 bytes + 9 space + 0 align = 20 bytes of data.
	if len(im.Data) != 20 {
		t.Errorf("data = %d bytes, want 20", len(im.Data))
	}
	if len(im.Relocs) != 3 {
		t.Fatalf("relocs = %v, want 3 entries", im.Relocs)
	}
	want := []telf.Reloc{
		{Offset: 4, Kind: telf.RelImm32},
		{Offset: 12, Kind: telf.RelImm32Add},
		{Offset: 40, Kind: telf.RelWord}, // text(36) + data offset 4
	}
	for i, r := range want {
		if im.Relocs[i] != r {
			t.Errorf("reloc[%d] = %+v, want %+v", i, im.Relocs[i], r)
		}
	}
	if err := im.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAssembledValues(t *testing.T) {
	im := mustAssemble(t, sampleSource)
	// First instruction: ldi32 r1, buf -> imm32 = image offset of buf = 32.
	in, n, err := isa.Decode(im.Text)
	if err != nil || n != 8 {
		t.Fatalf("decode: %v n=%d", err, n)
	}
	if in.Op != isa.OpLDI32 || in.Rd != isa.R1 || in.Imm32 != 36 {
		t.Errorf("first insn = %+v, want ldi32 r1, 36", in)
	}
	// Second: ldi32 r2, buf+4 -> 40.
	in2, _, err := isa.Decode(im.Text[8:])
	if err != nil {
		t.Fatal(err)
	}
	if in2.Imm32 != 40 {
		t.Errorf("buf+4 resolved to %d, want 40", in2.Imm32)
	}
	// beq loop: at offset 24, next=28, loop at 16 -> delta -12 -> -3 words.
	in3, _, err := isa.Decode(im.Text[24:])
	if err != nil {
		t.Fatal(err)
	}
	if in3.Op != isa.OpBEQ || in3.Imm != -3 {
		t.Errorf("beq = %+v, want imm -3", in3)
	}
	// Data word 1 holds the image offset of main (0).
	if got := uint32(im.Data[4]) | uint32(im.Data[5])<<8 | uint32(im.Data[6])<<16 | uint32(im.Data[7])<<24; got != 0 {
		t.Errorf(".word main = %d, want 0", got)
	}
}

func TestDefaultStack(t *testing.T) {
	im := mustAssemble(t, ".text\nhlt\n")
	if im.StackSize != DefaultStackSize {
		t.Errorf("StackSize = %d, want default %d", im.StackSize, DefaultStackSize)
	}
}

func TestAllMnemonics(t *testing.T) {
	src := `
.text
e:
    nop
    hlt
    mov r0, r1
    ldi r0, -5
    lui r1, 0xF000
    ldi32 r2, 0x12345678
    ld r0, [r1+4]
    st [r1-4], r0
    ldb r0, [r1]
    stb [r1], r0
    add r0, r1
    sub r0, r1
    and r0, r1
    or r0, r1
    xor r0, r1
    shl r0, r1
    shr r0, r1
    addi r0, 12
    mul r0, r1
    cmp r0, r1
    cmpi r0, 3
    jmp e
    beq e
    bne e
    blt e
    bge e
    bltu e
    bgeu e
    jr r3
    call e
    callr r3
    ret
    push sp
    pop r6
    svc 42
    rdcyc r0
`
	im := mustAssemble(t, src)
	// Decode everything back; each instruction must be valid.
	b := im.Text
	count := 0
	for len(b) > 0 {
		in, n, err := isa.Decode(b)
		if err != nil {
			t.Fatalf("decode at %d: %v", count, err)
		}
		if !in.Op.Valid() {
			t.Fatalf("invalid op decoded at insn %d", count)
		}
		b = b[n:]
		count++
	}
	if count != 36 {
		t.Errorf("decoded %d instructions, want 36", count)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":   ".text\nfrob r0\n",
		"unknown directive":  ".frob 1\n",
		"bad register":       ".text\nmov r9, r0\n",
		"imm range":          ".text\nldi r0, 70000\n",
		"undefined label":    ".text\njmp nowhere\n",
		"duplicate label":    ".text\na:\na:\n nop\n",
		"data instruction":   ".data\nnop\n",
		"entry undefined":    ".entry nope\n.text\nhlt\n",
		"entry in data":      ".entry d\n.text\nhlt\n.data\nd:\n.word 1\n",
		"bad mem operand":    ".text\nld r0, r1\n",
		"branch to data":     ".text\njmp d\n.data\nd:\n.word 0\n",
		"svc range":          ".text\nsvc -1\n",
		"word without value": ".text\nhlt\n.data\n.word\n",
		"byte range":         ".data\n.byte 300\n",
		"bad label char":     ".text\n1bad:\nhlt\n",
		"operand count":      ".text\nmov r0\n",
		"lui negative":       ".text\nlui r0, -1\n",
		"space negative":     ".data\n.space -1\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: Assemble succeeded, want error", name)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble(".text\nnop\nfrob r0\n")
	if err == nil {
		t.Fatal("want error")
	}
	var ae *Error
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not mention line 3", err)
	}
	if e, ok := err.(*Error); ok {
		ae = e
	}
	if ae == nil || ae.Line != 3 {
		t.Errorf("error = %#v, want *Error with Line 3", err)
	}
}

func TestLabelWithStatementOnSameLine(t *testing.T) {
	im := mustAssemble(t, ".text\nstart: nop\n jmp start\n")
	if len(im.Text) != 8 {
		t.Fatalf("text = %d bytes", len(im.Text))
	}
	in, _, _ := isa.Decode(im.Text[4:])
	if in.Op != isa.OpJMP || in.Imm != -2 {
		t.Errorf("jmp = %+v, want imm -2", in)
	}
}

func TestAlignPadding(t *testing.T) {
	im := mustAssemble(t, ".text\nhlt\n.data\n.byte 1\n.align 4\n.word 7\n")
	if len(im.Data) != 8 {
		t.Fatalf("data = %d bytes, want 8 (1 byte + 3 pad + 1 word)", len(im.Data))
	}
	if im.Data[4] != 7 {
		t.Errorf("aligned word = %d, want 7", im.Data[4])
	}
}

func TestInterleavedSectionsRelocOrder(t *testing.T) {
	src := `
.text
a:
    hlt
.data
d:
    .word a
.text
b:
    ldi32 r0, d
    hlt
`
	im := mustAssemble(t, src)
	if err := im.Validate(); err != nil {
		t.Fatalf("interleaved sections produced invalid image: %v", err)
	}
	if len(im.Relocs) != 2 {
		t.Fatalf("relocs = %+v", im.Relocs)
	}
	if im.Relocs[0].Offset >= im.Relocs[1].Offset {
		t.Errorf("relocs not sorted: %+v", im.Relocs)
	}
}

func TestNegativeAndHexNumbers(t *testing.T) {
	im := mustAssemble(t, ".text\nldi r0, -32768\naddi r1, 0x7FFF\nhlt\n")
	in, _, _ := isa.Decode(im.Text)
	if in.Imm != -32768 {
		t.Errorf("ldi imm = %d", in.Imm)
	}
	in2, _, _ := isa.Decode(im.Text[4:])
	if in2.Imm != 0x7FFF {
		t.Errorf("addi imm = %d", in2.Imm)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	im := mustAssemble(t, "; full line\n\n.text\nnop ; trailing\nnop # hash comment\n")
	if len(im.Text) != 8 {
		t.Errorf("text = %d bytes, want 8", len(im.Text))
	}
}

func TestEncodeAssembledImage(t *testing.T) {
	im := mustAssemble(t, sampleSource)
	b, err := im.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := telf.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != im.Name || len(out.Text) != len(im.Text) {
		t.Error("assembled image does not survive TELF round trip")
	}
}

func TestEquConstants(t *testing.T) {
	im := mustAssemble(t, `
.equ PEDAL, 0xF0000200
.equ PERIOD, 30000
.text
e:
    ldi32 r6, PEDAL
    ldi r0, PERIOD
    hlt
`)
	in, _, err := isa.Decode(im.Text)
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm32 != 0xF0000200 {
		t.Errorf("equ in ldi32 = %#x", in.Imm32)
	}
	in2, _, _ := isa.Decode(im.Text[8:])
	if in2.Imm != 30000 {
		t.Errorf("equ in ldi = %d", in2.Imm)
	}
	// Constants do not create relocations.
	if len(im.Relocs) != 0 {
		t.Errorf("relocs = %v", im.Relocs)
	}
}

func TestEquErrors(t *testing.T) {
	cases := map[string]string{
		"redefined":  ".equ A, 1\n.equ A, 2\n.text\nhlt\n",
		"bad name":   ".equ 1A, 1\n.text\nhlt\n",
		"bad value":  ".equ A, banana\n.text\nhlt\n",
		"wrong args": ".equ A\n.text\nhlt\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled", name)
		}
	}
}

func TestAsciiDirective(t *testing.T) {
	im := mustAssemble(t, `
.text
e:
    hlt
.data
msg:
    .ascii "hello, world"
    .byte 0
`)
	if string(im.Data[:12]) != "hello, world" {
		t.Errorf("ascii data = %q", im.Data[:12])
	}
	if im.Data[12] != 0 {
		t.Error("terminator missing")
	}
}

func TestAsciiErrors(t *testing.T) {
	if _, err := Assemble(".data\n.ascii unquoted\n"); err == nil {
		t.Error("unquoted ascii assembled")
	}
}

func TestEquForwardUseFails(t *testing.T) {
	// .equ must precede use (single-pass constant table during parse).
	if _, err := Assemble(".text\ne:\nldi r0, LATER\nhlt\n.equ LATER, 1\n"); err == nil {
		// Pass-1 records the .equ; pass-2 resolves instructions, so a
		// late .equ actually works. Document the behaviour either way.
		t.Log("late .equ resolved in pass 2 (accepted)")
	}
}

func TestPseudoInstructions(t *testing.T) {
	im := mustAssemble(t, `
.equ BIG, 0x12345
.text
e:
    li r0, 5          ; -> ldi
    li r1, BIG        ; -> ldi32
    li r2, e          ; label -> ldi32 + reloc
    clr r3
    inc r4
    dec r5
loop:
    bz loop
    bnz loop
    hlt
`)
	wantOps := []isa.Op{isa.OpLDI, isa.OpLDI32, isa.OpLDI32, isa.OpLDI, isa.OpADDI,
		isa.OpADDI, isa.OpBEQ, isa.OpBNE, isa.OpHLT}
	b := im.Text
	for i, want := range wantOps {
		in, n, err := isa.Decode(b)
		if err != nil {
			t.Fatalf("insn %d: %v", i, err)
		}
		if in.Op != want {
			t.Fatalf("insn %d: %v, want %v", i, in.Op, want)
		}
		switch i {
		case 1:
			if in.Imm32 != 0x12345 {
				t.Errorf("li BIG = %#x", in.Imm32)
			}
		case 4:
			if in.Imm != 1 {
				t.Errorf("inc imm = %d", in.Imm)
			}
		case 5:
			if in.Imm != -1 {
				t.Errorf("dec imm = %d", in.Imm)
			}
		}
		b = b[n:]
	}
	// The label li produced a relocation.
	if len(im.Relocs) != 1 {
		t.Errorf("relocs = %v", im.Relocs)
	}
}

func TestPseudoErrors(t *testing.T) {
	for name, src := range map[string]string{
		"li args":  ".text\ne:\nli r0\nhlt\n",
		"clr args": ".text\ne:\nclr\nhlt\n",
		"inc args": ".text\ne:\ninc\nhlt\n",
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s assembled", name)
		}
	}
}

// TestAssembleNeverPanics fuzzes the assembler with mutated valid
// sources: it must fail cleanly, never panic.
func TestAssembleNeverPanics(t *testing.T) {
	base := sampleSource
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 400; i++ {
		b := []byte(base)
		// Apply a handful of random byte mutations.
		for j := 0; j < 1+r.Intn(5); j++ {
			b[r.Intn(len(b))] = byte(r.Intn(128))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("assembler panicked on mutation %d: %v\nsource:\n%s", i, p, b)
				}
			}()
			Assemble(string(b))
		}()
	}
}

// TestAssembleGarbageLines feeds arbitrary short line soup.
func TestAssembleGarbageLines(t *testing.T) {
	f := func(lines []string) bool {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("panic: %v", p)
			}
		}()
		src := strings.Join(lines, "\n")
		Assemble(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestColonInsideTaskName(t *testing.T) {
	im := mustAssemble(t, ".task \"ns:pedal\"\n.text\ne:\nhlt\n")
	if im.Name != "ns:pedal" {
		t.Errorf("name = %q", im.Name)
	}
}

func TestBadLabelStillErrors(t *testing.T) {
	// An invalid label now falls through to mnemonic parsing and fails
	// there with a useful message.
	if _, err := Assemble(".text\n1bad:\nhlt\n"); err == nil {
		t.Error("invalid label assembled")
	}
}
