package core_test

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/trusted"
)

// Example boots a TyTAN platform, loads a secure task written in
// assembly, runs it, and remotely attests it — the whole public API in
// one breath.
func Example() {
	platform, err := core.NewPlatform(core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	image, err := asm.Assemble(`
.task "hello"
.entry main
.stack 128
.bss 28
.text
main:
    ldi r1, 111   ; 'o'
    svc 5         ; print
    ldi r1, 107   ; 'k'
    svc 5
    svc 1         ; exit
`)
	if err != nil {
		log.Fatal(err)
	}

	task, identity, err := platform.LoadTaskSync(image, core.Secure, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Remote attestation round trip (while the task is loaded).
	quote, err := platform.Provider("").Quote(task.ID, 42)
	if err != nil {
		log.Fatal(err)
	}
	if err := platform.Run(500_000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("uart:", platform.Output())
	err = platform.Provider("").Verifier().Verify(quote, trusted.IdentityOfImage(image), 42)
	fmt.Println("attested:", err == nil, "identity ==", quote.ID == identity)

	// Output:
	// uart: ok
	// attested: true identity == true
}

// ExamplePlatform_Seal shows identity-bound storage: data sealed by a
// task can only ever be unsealed by a task with the same measured
// binary.
func ExamplePlatform_Seal() {
	platform, err := core.NewPlatform(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	image, _ := asm.Assemble(".task \"m\"\n.entry e\n.stack 128\n.bss 28\n.text\ne:\n jmp e\n")
	task, _, err := platform.LoadTaskSync(image, core.Secure, 3)
	if err != nil {
		log.Fatal(err)
	}
	platform.Seal(task.ID, 1, []byte("calibration"))
	data, err := platform.Unseal(task.ID, 1)
	fmt.Printf("%s %v\n", data, err)
	// Output:
	// calibration <nil>
}
