package core

import (
	"math/rand"
	"testing"

	"repro/internal/rtos"
)

// TestSoakRandomLifecycle hammers the platform with a randomized
// sequence of loads, unloads, suspends, resumes and runs, then checks
// the global invariants: the kernel never errors, the allocator's
// live count matches the loaded ISA tasks, the RTM registry matches the
// loaded secure tasks, and EA-MPU slots are reclaimed.
func TestSoakRandomLifecycle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		seed := seed
		t.Run("seed", func(t *testing.T) {
			soakOnce(t, seed)
		})
	}
}

func soakOnce(t *testing.T, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	p := newTyTAN(t)

	type live struct {
		id     rtos.TaskID
		secure bool
	}
	var tasks []live
	loads, unloads, suspends := 0, 0, 0

	for step := 0; step < 120; step++ {
		switch op := r.Intn(10); {
		case op < 4: // load
			kind := Secure
			if r.Intn(3) == 0 {
				kind = Normal
			}
			name := "soak" + itoa(step)
			im := GenTestImage(t, name)
			tcb, _, err := p.LoadTaskSync(im, kind, 1+r.Intn(6))
			if err != nil {
				// Slot/memory exhaustion is a legal outcome; everything
				// else is a bug.
				if len(tasks) < 3 {
					t.Fatalf("step %d: load failed with only %d tasks: %v", step, len(tasks), err)
				}
				continue
			}
			tasks = append(tasks, live{id: tcb.ID, secure: kind == Secure})
			loads++
		case op < 6 && len(tasks) > 0: // unload
			i := r.Intn(len(tasks))
			if err := p.Unload(tasks[i].id); err != nil {
				t.Fatalf("step %d: unload: %v", step, err)
			}
			tasks = append(tasks[:i], tasks[i+1:]...)
			unloads++
		case op < 7 && len(tasks) > 0: // suspend + resume
			i := r.Intn(len(tasks))
			if err := p.Suspend(tasks[i].id); err != nil && err != rtos.ErrNoSuchTask {
				t.Fatalf("step %d: suspend: %v", step, err)
			}
			if err := p.Resume(tasks[i].id); err != nil && err != rtos.ErrNoSuchTask && err != rtos.ErrDeadTask {
				t.Fatalf("step %d: resume: %v", step, err)
			}
			suspends++
		default: // run
			if err := p.Run(uint64(1+r.Intn(4)) * DefaultTickPeriod); err != nil {
				t.Fatalf("step %d: run: %v", step, err)
			}
		}

		// Tasks may exit or die on their own; resync our view.
		alive := tasks[:0]
		for _, l := range tasks {
			if _, ok := p.K.Task(l.id); ok {
				alive = append(alive, l)
			}
		}
		tasks = alive

		// Invariants after every step.
		secureCount := 0
		isaCount := 0
		for _, l := range tasks {
			if l.secure {
				secureCount++
			}
			isaCount++
		}
		if got := p.C.RTM.Entries(); got != secureCount {
			t.Fatalf("step %d: registry %d entries, %d secure tasks loaded", step, got, secureCount)
		}
		if got := p.K.Alloc.LiveCount(); got != isaCount {
			t.Fatalf("step %d: allocator %d live, %d tasks loaded", step, got, isaCount)
		}
	}
	if loads == 0 || unloads == 0 {
		t.Fatalf("soak exercised nothing: %d loads, %d unloads, %d suspends", loads, unloads, suspends)
	}

	// Drain: unload everything, then every resource is back.
	for _, l := range tasks {
		if err := p.Unload(l.id); err != nil {
			t.Fatal(err)
		}
	}
	if p.K.Alloc.LiveCount() != 0 {
		t.Error("allocator leak after drain")
	}
	if p.C.RTM.Entries() != 0 {
		t.Error("registry leak after drain")
	}
	if used := p.M.MPU.UsedSlots(); used != 7 {
		t.Errorf("EA-MPU slots after drain = %d, want 7 boot rules", used)
	}
	// The platform still works.
	if _, _, err := p.LoadTaskSync(GenTestImage(t, "final"), Secure, 3); err != nil {
		t.Errorf("load after soak: %v", err)
	}
}
