// Package core is TyTAN's public façade: it assembles the simulated
// platform (machine, devices, RTOS, trusted components), boots it, and
// exposes the operations a system integrator uses — loading, unloading
// and suspending tasks at runtime, secure IPC, attestation and sealed
// storage — mirroring the architecture of Figure 1 in the paper.
//
// Two configurations exist:
//
//   - the TyTAN configuration (default): secure boot runs, the EA-MPU
//     enforces isolation, secure tasks are measured and attestable;
//   - the baseline configuration (Options.Baseline): the unmodified
//     FreeRTOS the paper's tables compare against.
//
// A minimal session:
//
//	p, _ := core.NewPlatform(core.Options{})
//	im, _ := asm.Assemble(taskSource)
//	t, _ := p.LoadTaskSync(im, core.Secure, 3)
//	p.Run(10 * core.DefaultTickPeriod)
//	fmt.Print(p.Output())
package core

import (
	"errors"
	"fmt"

	"repro/internal/machine"
	"repro/internal/rtos"
	"repro/internal/sha1"
	"repro/internal/telf"
	"repro/internal/trace"
	"repro/internal/trusted"
)

// Task kinds re-exported for API convenience.
const (
	Normal = rtos.KindNormal
	Secure = rtos.KindSecure
)

// DefaultTickPeriod re-exports the kernel's 1.5 kHz tick.
const DefaultTickPeriod = rtos.DefaultTickPeriod

// Options configures platform construction.
type Options struct {
	// RAMSize in bytes (0 = 4 MiB).
	RAMSize uint32
	// TickPeriod in cycles (0 = DefaultTickPeriod).
	TickPeriod uint64
	// PlatformKey is Kp; zero-length selects a fixed development key.
	PlatformKey []byte
	// Provider is the attestation-key derivation context.
	Provider string
	// Baseline selects the unmodified-FreeRTOS configuration: no secure
	// boot, no EA-MPU, baseline interrupt path.
	Baseline bool
	// LoaderPriority is the priority of the background loader service
	// (default 1, below typical real-time tasks).
	LoaderPriority int
	// SensorPeriod is the sample period of the pedal/radar sensors in
	// cycles (0 = one sample per tick).
	SensorPeriod uint64
	// EngineHistory bounds the engine actuator's command log
	// (0 = 4096).
	EngineHistory int
	// LoaderQuantum caps the loader service's work per dispatch in
	// cycles (0 = the default bounded quantum). The atomic-measurement
	// ablation sets it very high to reproduce the SMART/SPM-style
	// non-interruptible loading the paper argues against.
	LoaderQuantum uint64
	// Static lists tasks fixed at boot time. With StaticOnly set, the
	// platform refuses all runtime task management afterwards — the
	// TrustLite configuration model the paper contrasts against
	// ("TrustLite requires all software components to be loaded and
	// their isolation to be configured at boot time", §7).
	Static     []StaticTask
	StaticOnly bool
	// StrictVerify arms the static pre-load verification gate at boot:
	// the loader refuses images the verifier proves broken, before any
	// memory is allocated or measured. Requires the TyTAN configuration
	// (it is a trusted-layer policy); combined with Baseline,
	// NewPlatform fails with ErrBaselineOnly.
	StrictVerify bool
	// BoundsAdmission additionally arms the resource-bound admission
	// check at boot (implies StrictVerify): the loader refuses images
	// whose certified worst-case stack depth does not fit their stack
	// reservation, or whose worst-case burst exceeds a cycle budget
	// declared in CycleBudgets. TyTAN configuration only.
	BoundsAdmission bool
	// CycleBudgets maps image names to per-activation cycle budgets for
	// the bounds admission check. Images without an entry carry no
	// cycle constraint.
	CycleBudgets map[string]uint64
	// Engine selects the simulator execution engine. Purely a host-side
	// speed/debuggability trade: every engine is cycle-exact and
	// produces bit-identical guest behavior.
	Engine Engine
}

// Engine selects how the simulator executes guest instructions.
type Engine int

const (
	// EngineDefault keeps the machine package defaults (currently the
	// superblock engine).
	EngineDefault Engine = iota
	// EngineReference interprets every instruction through the full
	// EA-MPU scan: slowest, the oracle the others are tested against.
	EngineReference
	// EngineFastPath interprets with the decode/decision caches but
	// compiles nothing.
	EngineFastPath
	// EngineSuperblock compiles basic blocks to threaded code.
	EngineSuperblock
)

// apply configures a machine for the selected engine.
func (e Engine) apply(m *machine.Machine) {
	switch e {
	case EngineReference:
		m.FastPath, m.Superblocks = false, false
	case EngineFastPath:
		m.FastPath, m.Superblocks = true, false
	case EngineSuperblock:
		m.FastPath, m.Superblocks = true, true
	}
}

// StaticTask describes one boot-time task of the static configuration.
type StaticTask struct {
	Image *telf.Image
	Kind  rtos.TaskKind
	Prio  int
}

// DevKey is the development platform key used when Options.PlatformKey
// is empty.
var DevKey = []byte("tytan-dev-platform-key!!")[:machine.KeySize]

// Platform is a booted TyTAN (or baseline) system.
type Platform struct {
	M *machine.Machine
	K *rtos.Kernel
	// C holds the trusted components; nil in the baseline configuration.
	C *trusted.Components
	// Sup is the trusted supervisor; nil until EnableSupervision.
	Sup *trusted.Supervisor

	UART     *machine.UART
	Pedal    *machine.Sensor
	Radar    *machine.Sensor
	Engine   *machine.Engine
	KeyStore *machine.KeyStore
	NIC      *machine.NIC

	loader    *loaderService
	loaderTCB *rtos.TCB

	// updater is the secure update service; nil until EnableSecureUpdate.
	updater *trusted.Updater

	platformKey []byte
	provider    string
	staticOnly  bool

	// obs is the platform-wide event sink; nil until
	// EnableObservability. obsHandle is the exporter handle.
	obs       trace.Sink
	obsHandle *Obs
}

// Platform errors.
var (
	ErrBaselineOnly = errors.New("core: operation unavailable in the baseline configuration")
	ErrLoadFailed   = errors.New("core: task load failed")
	// ErrStaticConfig is returned by runtime task management on a
	// statically configured (TrustLite-style) platform.
	ErrStaticConfig = errors.New("core: platform is statically configured; runtime task management disabled")
)

// NewPlatform builds and boots a platform.
func NewPlatform(opt Options) (*Platform, error) {
	if len(opt.PlatformKey) == 0 {
		opt.PlatformKey = DevKey
	}
	if opt.Provider == "" {
		opt.Provider = "default-provider"
	}
	if opt.LoaderPriority == 0 {
		opt.LoaderPriority = 1
	}
	if opt.SensorPeriod == 0 {
		if opt.TickPeriod != 0 {
			opt.SensorPeriod = opt.TickPeriod
		} else {
			opt.SensorPeriod = DefaultTickPeriod
		}
	}
	if opt.EngineHistory == 0 {
		opt.EngineHistory = 4096
	}

	m := machine.New(opt.RAMSize)
	opt.Engine.apply(m)
	p := &Platform{
		M:           m,
		UART:        machine.NewUART(),
		KeyStore:    machine.NewKeyStore(opt.PlatformKey),
		platformKey: append([]byte(nil), opt.PlatformKey...),
		provider:    opt.Provider,
	}
	p.Pedal = machine.NewSensor("pedal", m.Cycles, opt.SensorPeriod, 0, 100)
	p.Radar = machine.NewSensor("radar", m.Cycles, opt.SensorPeriod, 5, 250)
	p.Engine = machine.NewEngine(m.Cycles, opt.EngineHistory)
	p.NIC = machine.NewNIC(m.Cycles)
	m.MapDevice(machine.PageUART, p.UART)
	m.MapDevice(machine.PageNIC, p.NIC)
	m.MapDevice(machine.PagePedal, p.Pedal)
	m.MapDevice(machine.PageRadar, p.Radar)
	m.MapDevice(machine.PageKeyStore, p.KeyStore)
	m.MapDevice(machine.PageEngine, p.Engine)

	k, err := rtos.NewKernel(m, rtos.Config{
		TyTAN:      !opt.Baseline,
		TickPeriod: opt.TickPeriod,
	})
	if err != nil {
		return nil, err
	}
	p.K = k

	if !opt.Baseline {
		c, err := trusted.Boot(k, trusted.BootConfig{Provider: opt.Provider})
		if err != nil {
			return nil, err
		}
		p.C = c
	}
	if opt.StrictVerify {
		// Armed before the static tasks load so they are gated too.
		if err := p.EnableStrictVerify(); err != nil {
			return nil, fmt.Errorf("core: strict verify: %w", err)
		}
	}
	if opt.BoundsAdmission {
		if err := p.EnableBoundsAdmission(opt.CycleBudgets); err != nil {
			return nil, fmt.Errorf("core: bounds admission: %w", err)
		}
	}

	p.loader = newLoaderService(p, opt.LoaderQuantum)
	tcb, err := k.NewServiceTask("os-loader", opt.LoaderPriority, p.loader)
	if err != nil {
		return nil, err
	}
	p.loaderTCB = tcb

	// Boot-time tasks (both configurations may use them; the static
	// configuration *only* has them).
	for i, st := range opt.Static {
		if _, _, err := p.LoadTaskSync(st.Image, st.Kind, st.Prio); err != nil {
			return nil, fmt.Errorf("core: static task %d: %w", i, err)
		}
	}
	p.staticOnly = opt.StaticOnly

	k.StartTick()
	return p, nil
}

// EnableStrictVerify arms the static pre-load verification gate: from
// now on every load — sync, async, static — is verified before memory
// is allocated, and images with Error findings fail with an error
// wrapping loader.ErrVerifyRejected (a verify-denied trace event is
// emitted when observability is on). TyTAN configuration only.
func (p *Platform) EnableStrictVerify() error {
	if p.C == nil {
		return ErrBaselineOnly
	}
	p.C.EnableVerifyGate(p.M.RAMSize())
	return nil
}

// StrictVerify reports whether the pre-load verification gate is armed.
func (p *Platform) StrictVerify() bool { return p.C != nil && p.C.Gate != nil }

// EnableBoundsAdmission arms the static resource-bound admission check
// on top of the strict verification gate (arming the gate first if
// necessary): from now on every load is refused — with a typed
// verify-denied trace event naming the reason — unless its certified
// worst-case stack depth plus the pre-emption context frame fits its
// stack reservation, and its worst-case burst fits any cycle budget
// declared for it in budgets. TyTAN configuration only.
func (p *Platform) EnableBoundsAdmission(budgets map[string]uint64) error {
	if err := p.EnableStrictVerify(); err != nil {
		return err
	}
	p.C.EnableBoundsAdmission(budgets)
	return nil
}

// BoundsAdmission reports whether the resource-bound admission check is
// armed.
func (p *Platform) BoundsAdmission() bool {
	return p.C != nil && p.C.Gate != nil && p.C.Gate.Bounds
}

// StaticOnly reports whether runtime task management is disabled.
func (p *Platform) StaticOnly() bool { return p.staticOnly }

// Close releases the platform's simulation resources (recycling the
// machine's RAM buffer for future platforms). The platform must not be
// used afterwards. Closing is optional; an un-closed platform is
// collected by the GC. The evaluation harness closes platforms because
// it builds one per measurement and the RAM allocations otherwise
// dominate host time.
func (p *Platform) Close() { p.M.Release() }

// Baseline reports whether the platform runs the unmodified-FreeRTOS
// configuration.
func (p *Platform) Baseline() bool { return p.C == nil }

// Run advances the simulation by the given number of cycles.
func (p *Platform) Run(cycles uint64) error {
	return p.K.RunUntil(p.M.Cycles() + cycles)
}

// RunUntil advances the simulation to an absolute cycle count.
func (p *Platform) RunUntil(cycle uint64) error { return p.K.RunUntil(cycle) }

// Cycles returns the platform's cycle counter.
func (p *Platform) Cycles() uint64 { return p.M.Cycles() }

// RegisterDeadline declares a periodic deadline for a task: the kernel
// verifies at every tick that the task was dispatched in each period
// window and stamps a deadline-miss event otherwise (see
// internal/rtos/deadline.go). Monitoring charges no cycles.
func (p *Platform) RegisterDeadline(id rtos.TaskID, period uint64) error {
	return p.K.RegisterDeadline(id, period)
}

// Output returns everything tasks printed to the UART.
func (p *Platform) Output() string { return p.UART.String() }

// LoadTaskSync loads a task through the complete TyTAN sequence —
// allocate, load+relocate, prepare stack, configure EA-MPU, measure
// (secure tasks), schedule — in one non-interruptible call, returning
// the task and its measured identity. Benchmarks measuring raw creation
// cost use this; real-time systems use LoadTaskAsync.
func (p *Platform) LoadTaskSync(im *telf.Image, kind rtos.TaskKind, prio int) (*rtos.TCB, sha1.Digest, error) {
	if p.staticOnly {
		return nil, sha1.Digest{}, ErrStaticConfig
	}
	req := newLoadRequest(im, kind, prio)
	if err := p.loader.runSync(req); err != nil {
		return nil, sha1.Digest{}, err
	}
	return req.tcb, req.identity, nil
}

// LoadTaskAsync enqueues a load for the background loader service and
// returns immediately. The load proceeds in bounded micro-steps
// interleaved with task execution — the property that keeps the 1.5 kHz
// control tasks of Table 1 on deadline while a 27.8 ms load is in
// flight. Observe completion through the returned request.
func (p *Platform) LoadTaskAsync(im *telf.Image, kind rtos.TaskKind, prio int) *LoadRequest {
	req := newLoadRequest(im, kind, prio)
	if p.staticOnly {
		req.phase = LoadFailed
		req.err = ErrStaticConfig
		return req
	}
	p.loader.enqueue(req)
	p.K.WakeService(p.loaderTCB)
	return req
}

// Unload removes a task at runtime, releasing its memory, EA-MPU rules
// and registry entry.
func (p *Platform) Unload(id rtos.TaskID) error {
	if p.staticOnly {
		return ErrStaticConfig
	}
	return p.K.Unload(id)
}

// Suspend stops a task from being scheduled until Resume.
func (p *Platform) Suspend(id rtos.TaskID) error { return p.K.Suspend(id) }

// Resume reverses Suspend.
func (p *Platform) Resume(id rtos.TaskID) error { return p.K.Resume(id) }

// Identity returns the measured identity of a loaded secure task.
func (p *Platform) Identity(id rtos.TaskID) (sha1.Digest, error) {
	if p.C == nil {
		return sha1.Digest{}, ErrBaselineOnly
	}
	e, ok := p.C.RTM.LookupByTask(id)
	if !ok {
		return sha1.Digest{}, trusted.ErrNotMeasured
	}
	return e.ID, nil
}

// ProviderHandle scopes attestation to one stakeholder: quotes MACed
// under that provider's individual attestation key and the matching
// verifier. Obtain one from Platform.Provider.
type ProviderHandle struct {
	p    *Platform
	name string
}

// Provider returns the attestation handle for the named stakeholder
// (multi-stakeholder attestation, §2/§3). An empty name selects the
// platform's default provider. The handle is valid on a baseline
// platform too — its Verifier works, but Quote fails with
// ErrBaselineOnly.
func (p *Platform) Provider(name string) ProviderHandle {
	if name == "" {
		name = p.provider
	}
	return ProviderHandle{p: p, name: name}
}

// Name returns the provider this handle is scoped to.
func (h ProviderHandle) Name() string { return h.name }

// Quote produces a remote attestation report for a loaded secure task,
// MACed under this provider's attestation key.
func (h ProviderHandle) Quote(id rtos.TaskID, nonce uint64) (trusted.Quote, error) {
	if h.p.C == nil {
		return trusted.Quote{}, ErrBaselineOnly
	}
	if h.name == h.p.provider {
		// The default provider's key is the component's boot-derived Ka;
		// quoting through it skips the per-provider derivation charge.
		return h.p.C.Attest.QuoteTask(id, nonce)
	}
	return h.p.C.Attest.QuoteTaskForProvider(h.name, id, nonce)
}

// Verifier returns the remote party holding this provider's
// attestation key (provisioned out of band from Kp).
func (h ProviderHandle) Verifier() *trusted.Verifier {
	return trusted.NewVerifier(h.p.platformKey, h.name)
}

// Seal stores data in the secure-storage slot on behalf of task id.
func (p *Platform) Seal(id rtos.TaskID, slot uint32, data []byte) error {
	if p.C == nil {
		return ErrBaselineOnly
	}
	t, ok := p.K.Task(id)
	if !ok {
		return rtos.ErrNoSuchTask
	}
	return p.C.Storage.Store(t, slot, data)
}

// Unseal retrieves sealed data on behalf of task id.
func (p *Platform) Unseal(id rtos.TaskID, slot uint32) ([]byte, error) {
	if p.C == nil {
		return nil, ErrBaselineOnly
	}
	t, ok := p.K.Task(id)
	if !ok {
		return nil, rtos.ErrNoSuchTask
	}
	return p.C.Storage.Load(t, slot)
}

// figure1 is the paper's architecture diagram, as booted here.
const figure1 = `
  ┌──────────────────────────── untrusted ───────────────────────────┐
  │  Task A   Task B  (normal)     │   OS (FreeRTOS-like kernel)     │
  ├──────────────────────────────── ─ ─ ─ ──────────────────────────┤
  │  Task C   Task D  (secure, isolated from each other AND the OS)  │
  ├───────────────────────────── trusted ────────────────────────────┤
  │  EA-MPU driver │ Int Mux │ IPC proxy │ RTM │ Attest │ Storage    │
  ├───────────────────────────── hardware ───────────────────────────┤
  │  CPU ── EA-MPU ── memory ── MMIO(timer, uart, sensors, Kp, nic)  │
  └───────────────────────────────────────────────────────────────────┘
`

// Describe prints the component map of the booted platform (the textual
// Figure 1) to the returned string.
func (p *Platform) Describe() string {
	cfg := "TyTAN"
	if p.Baseline() {
		cfg = "baseline FreeRTOS"
	}
	s := fmt.Sprintf("configuration: %s\nRAM: %d KiB at %#x\ntick: %d cycles (%.1f kHz at %d MHz)\n",
		cfg, p.M.RAMSize()>>10, machine.RAMBase,
		p.K.Cfg.TickPeriod, float64(machine.ClockHz)/float64(p.K.Cfg.TickPeriod)/1000, machine.ClockHz/1_000_000)
	if p.C != nil {
		s += fmt.Sprintf("trusted components: EA-MPU driver, Int Mux, IPC proxy, RTM, Remote Attest, Secure Storage\n"+
			"boot report: %x\nEA-MPU slots in use: %d/%d\n",
			p.C.BootReport, p.M.MPU.UsedSlots(), 18)
		s += figure1
	}
	if c := p.Cycles(); c > 0 {
		s += fmt.Sprintf("cycles: %d, CPU utilization: %.1f %%\n", c, p.K.Utilization()*100)
	}
	return s
}
