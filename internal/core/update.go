package core

import (
	"fmt"

	"repro/internal/rtos"
	"repro/internal/sha1"
	"repro/internal/telf"
	"repro/internal/trusted"
)

// Runtime task update — the paper's stated future work ("extending
// TyTAN with a mechanism to update tasks at runtime (i.e., without
// stopping and restarting them) to meet the high availability
// requirements of embedded applications", §8) — implemented here as an
// extension on top of the dynamic-loading machinery:
//
//  1. The replacement binary is loaded, measured and protected while
//     the old version keeps running (the expensive phases overlap with
//     service).
//  2. The old version is suspended at a quiescent point and any
//     undelivered mailbox message is transferred by the IPC proxy.
//  3. Sealed storage is migrated slot by slot: the secure-storage task
//     unseals under the old identity and re-seals under the new one —
//     an *explicit, owner-authorized* act, because by design the new
//     identity could never unseal the old data on its own.
//  4. The new version is scheduled and the old one unloaded.
//
// The unavailability window is steps 2–4 only: bounded kernel
// primitives, independent of the binary size.

// UpdateResult reports a completed update.
type UpdateResult struct {
	Old         rtos.TaskID
	New         *rtos.TCB
	NewIdentity sha1.Digest
	// DowntimeCycles is the span during which neither version was
	// schedulable.
	DowntimeCycles uint64
	// MigratedSlots lists the storage slots re-sealed to the new
	// identity.
	MigratedSlots []uint32
}

// UpdateTask replaces the task identified by id with the new image,
// migrating the listed secure-storage slots to the new identity. The
// new task inherits the old one's priority. Only secure tasks are
// updatable (normal tasks have no identity to migrate).
func (p *Platform) UpdateTask(id rtos.TaskID, im *telf.Image, migrateSlots []uint32) (*UpdateResult, error) {
	if p.C == nil {
		return nil, ErrBaselineOnly
	}
	if p.staticOnly {
		return nil, ErrStaticConfig
	}
	old, ok := p.K.Task(id)
	if !ok {
		return nil, rtos.ErrNoSuchTask
	}
	if old.Kind != rtos.KindSecure {
		return nil, fmt.Errorf("core: update: task %d is not a secure task", id)
	}
	oldEntry, ok := p.C.RTM.LookupByTask(id)
	if !ok {
		return nil, trusted.ErrNotMeasured
	}

	// Step 1: bring the replacement fully up (loaded, measured,
	// protected) but still suspended — the old version keeps serving.
	req := newLoadRequest(im, rtos.KindSecure, old.Priority)
	if err := p.loader.runSyncUntilScheduled(req); err != nil {
		return nil, err
	}
	newTCB := req.tcb

	// Step 2: quiesce the old version and transfer its mailbox.
	downStart := p.M.Cycles()
	if err := p.K.Suspend(old.ID); err != nil {
		p.K.Unload(newTCB.ID)
		return nil, err
	}
	newEntry, ok := p.C.RTM.LookupByTask(newTCB.ID)
	if !ok {
		p.K.Unload(newTCB.ID)
		return nil, trusted.ErrNotMeasured
	}
	if err := p.C.Proxy.TransferMailbox(oldEntry, newEntry); err != nil {
		p.K.Unload(newTCB.ID)
		p.K.Resume(old.ID)
		return nil, err
	}

	// Step 3: migrate sealed state under owner authorization.
	var migrated []uint32
	for _, slot := range migrateSlots {
		if err := p.C.Storage.Migrate(old, newTCB, slot); err != nil {
			p.K.Unload(newTCB.ID)
			p.K.Resume(old.ID)
			return nil, fmt.Errorf("core: update: migrating slot %d: %w", slot, err)
		}
		migrated = append(migrated, slot)
	}

	// Step 4: switch over.
	if err := p.K.Resume(newTCB.ID); err != nil {
		return nil, err
	}
	downEnd := p.M.Cycles()
	if err := p.K.Unload(old.ID); err != nil {
		return nil, err
	}
	return &UpdateResult{
		Old:            id,
		New:            newTCB,
		NewIdentity:    req.identity,
		DowntimeCycles: downEnd - downStart,
		MigratedSlots:  migrated,
	}, nil
}

// runSyncUntilScheduled drives a load through every phase except the
// final scheduler notification, leaving the task suspended.
func (s *loaderService) runSyncUntilScheduled(req *LoadRequest) error {
	for !req.Done() && req.phase != LoadSchedule {
		used := s.advance(req, 1<<30)
		s.p.M.Charge(used)
	}
	if req.phase == LoadFailed {
		return req.err
	}
	return nil
}
