package core

import (
	"io"

	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/trusted"
)

// Observability wiring: EnableObservability turns on the platform-wide
// lens — typed events from every subsystem collected into one buffer,
// per-subsystem metrics in one registry, and the exporters (Chrome
// trace, Prometheus text, cycle-attribution profile) over both.
//
// The lens is pure: emission never charges simulated cycles, gauges are
// sampled at export time, and with observability off every emission
// site is a single nil check — the paper's cycle numbers are identical
// either way.

// Obs is the platform's observability handle.
type Obs struct {
	// Buf collects every typed event in emission order.
	Buf *trace.Buffer
	// Reg holds the platform metrics (counters, gauges, histograms).
	Reg *trace.Registry

	p *Platform

	// Histograms fed from the event stream.
	irqLatency *trace.Histogram
	loadTotal  *trace.Histogram
	attestRTT  *trace.Histogram
}

// irqLatencyBounds buckets interrupt-entry latency in cycles.
var irqLatencyBounds = []uint64{8, 16, 32, 64, 128, 256, 512, 1024}

// loadTotalBounds buckets whole-load cost in cycles (Table 4's overall
// column spans roughly 100k–3M cycles across image sizes).
var loadTotalBounds = []uint64{50_000, 100_000, 250_000, 500_000, 1_000_000, 2_000_000, 4_000_000}

// attestRTTBounds buckets attestation round-trips in cycles (a quote
// is dominated by the HMAC over the task region, §5).
var attestRTTBounds = []uint64{10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000}

// EnableObservability wires the observability layer into every
// subsystem and returns the handle. Extra sinks (a live printer, a
// test recorder) see the same stream as the buffer. Idempotent: a
// second call returns the same handle and ignores extras. There is no
// way to disable it again on a live platform — build a fresh platform
// for uninstrumented measurement.
func (p *Platform) EnableObservability(extra ...trace.Sink) *Obs {
	if p.obsHandle != nil {
		return p.obsHandle
	}
	o := &Obs{
		Buf: new(trace.Buffer),
		Reg: trace.NewRegistry(),
		p:   p,
	}
	o.irqLatency = o.Reg.Histogram("tytan_irq_latency_cycles",
		"Interrupt entry latency per serviced interrupt.", irqLatencyBounds...)
	o.loadTotal = o.Reg.Histogram("tytan_load_total_cycles",
		"End-to-end cost of completed dynamic loads.", loadTotalBounds...)
	o.attestRTT = o.Reg.Histogram("tytan_attest_rtt_cycles",
		"Attestation round-trip time, request to verified reply.", attestRTTBounds...)
	o.registerGauges()

	// Every subsystem feeds the buffer; the metrics sink peels
	// histogram samples off the same stream.
	sinks := append([]trace.Sink{o.Buf, trace.SinkFunc(o.observeEvent)}, extra...)
	sink := trace.Multi(sinks...)
	p.obs = sink
	p.M.Obs = sink
	p.K.Obs = sink
	if p.C != nil {
		p.C.Attest.Obs = sink
		p.C.Proxy.Obs = sink
	}
	if p.Sup != nil {
		p.Sup.Obs = sink
	}
	if p.updater != nil {
		p.updater.Obs = sink
	}
	p.obsHandle = o
	return o
}

// Observability returns the handle if EnableObservability has run.
func (p *Platform) Observability() *Obs { return p.obsHandle }

// Sink returns the installed fan-out sink — the one every subsystem
// emits through. External components attached to the platform (a
// remote-attestation server, a fleet harness) emit through it so their
// events land in the buffer, the metrics observer and every extra sink
// alike.
func (o *Obs) Sink() trace.Sink { return o.p.obs }

// observeEvent feeds event-derived metrics (histograms need samples,
// not end-of-run gauge reads).
func (o *Obs) observeEvent(e trace.Event) {
	switch e.Kind {
	case trace.KindIRQ, trace.KindTick:
		if lat, ok := e.NumAttr("latency"); ok {
			o.irqLatency.Observe(lat)
		}
	case trace.KindLoadPhase:
		if a, ok := e.Attr("phase"); ok && a.Str == "done" {
			if total, ok := e.NumAttr("total"); ok {
				o.loadTotal.Observe(total)
			}
		}
	case trace.KindAttest:
		if e.Sub == trace.SubRemote {
			if rtt, ok := e.NumAttr("rtt"); ok {
				o.attestRTT.Observe(rtt)
			}
		}
	}
}

// registerGauges exposes every subsystem's monotonic counters as
// export-time-sampled gauges — zero cost while the simulation runs.
func (o *Obs) registerGauges() {
	p, r := o.p, o.Reg

	r.Gauge("tytan_cycles", "Platform cycle counter.", p.M.Cycles)

	// Machine / interpreter fast path.
	r.Gauge("tytan_machine_insn_retired", "Instructions retired.",
		func() uint64 { return p.M.Stats().InsnRetired })
	r.Gauge("tytan_machine_decode_misses", "Instruction-cache decode misses.",
		func() uint64 { return p.M.Stats().DecodeMisses })
	r.Gauge("tytan_machine_exec_span_fills", "EA-MPU execute-span cache fills.",
		func() uint64 { return p.M.Stats().ExecSpanFills })
	r.Gauge("tytan_machine_data_span_fills", "EA-MPU data-span cache fills.",
		func() uint64 { return p.M.Stats().DataSpanFills })
	r.Gauge("tytan_machine_gen_bumps", "EA-MPU generation bumps (cache invalidations).",
		func() uint64 { return p.M.Stats().GenBumps })

	// Superblock engine.
	r.Gauge("tytan_machine_sb_compiles", "Superblocks compiled (incl. recompiles).",
		func() uint64 { return p.M.Stats().SBCompiles })
	r.Gauge("tytan_machine_sb_hits", "Superblock cache hits (blocks dispatched).",
		func() uint64 { return p.M.Stats().SBHits })
	r.Gauge("tytan_machine_sb_bails", "Superblock mid-block bails to the interpreter.",
		func() uint64 { return p.M.Stats().SBBails })
	r.Gauge("tytan_machine_sb_fallbacks", "Superblock dispatches declined (guards).",
		func() uint64 { return p.M.Stats().SBFallbacks })
	r.Gauge("tytan_machine_sb_invalidations", "Superblock invalidations from code writes.",
		func() uint64 { return p.M.Stats().SBInvalidations })

	// Kernel.
	r.Gauge("tytan_kernel_ticks", "Timer ticks serviced.", p.K.Ticks)
	r.Gauge("tytan_kernel_switches", "Context switches (dispatches).", p.K.Switches)
	r.Gauge("tytan_kernel_preemptions", "Preemptive task switches.", p.K.Preempted)
	r.Gauge("tytan_kernel_idle_cycles", "Cycles spent with no runnable task.", p.K.IdleCycles)
	r.Gauge("tytan_kernel_deadline_misses", "Missed periodic-deadline windows.", p.K.DeadlineMisses)

	// EA-MPU.
	r.Gauge("tytan_eampu_violations", "Access-control violations raised.", p.M.MPU.Violations)
	r.Gauge("tytan_eampu_generation", "EA-MPU configuration generation.", p.M.MPU.Generation)
	r.Gauge("tytan_eampu_slots_used", "EA-MPU region slots in use.",
		func() uint64 { return uint64(p.M.MPU.UsedSlots()) })

	// Trusted components (TyTAN configuration only).
	if p.C != nil {
		r.Gauge("tytan_attest_quotes", "Attestation quotes issued.",
			func() uint64 { issued, _ := p.C.Attest.QuoteCounts(); return issued })
		r.Gauge("tytan_attest_denials", "Attestation quote requests denied.",
			func() uint64 { _, denied := p.C.Attest.QuoteCounts(); return denied })
	}

	// Supervisor counters read through the platform so enabling
	// supervision after observability still reports.
	r.Gauge("tytan_sup_faults", "Task faults seen by the supervisor.",
		func() uint64 { return p.supCounts().Faults })
	r.Gauge("tytan_sup_restarts", "Supervisor restarts issued.",
		func() uint64 { return p.supCounts().Restarts })
	r.Gauge("tytan_sup_restart_failures", "Supervisor restarts that failed.",
		func() uint64 { return p.supCounts().RestartFailures })
	r.Gauge("tytan_sup_quarantines", "Task identities quarantined.",
		func() uint64 { return p.supCounts().Quarantines })
	r.Gauge("tytan_sup_watchdog_kills", "Watchdog kills (hangs and quota).",
		func() uint64 { return p.supCounts().WatchdogKills })

	// Secure update decisions, read through the platform so enabling the
	// update service after observability still reports.
	r.Gauge("tytan_update_accepted", "Secure updates accepted and committed.",
		func() uint64 { return p.updateCounts().Accepted })
	r.Gauge("tytan_update_denied", "Secure updates refused before any state change.",
		func() uint64 { return p.updateCounts().Denied })
	r.Gauge("tytan_update_rolled_back", "Secure updates unwound after a mid-swap fault.",
		func() uint64 { return p.updateCounts().RolledBack })
}

// supCounts reads the supervisor counters, zero when supervision is
// not enabled.
func (p *Platform) supCounts() trusted.SupCounts {
	if p.Sup == nil {
		return trusted.SupCounts{}
	}
	return p.Sup.Counts()
}

// updateCounts reads the update-service counters, zero when the service
// is not enabled.
func (p *Platform) updateCounts() trusted.UpdateCounts {
	if p.updater == nil {
		return trusted.UpdateCounts{}
	}
	return p.updater.Counts()
}

// Events returns a copy of the collected event stream.
func (o *Obs) Events() []trace.Event { return o.Buf.Events() }

// WriteChromeTrace exports the event stream in Chrome trace_event JSON
// (load into chrome://tracing or Perfetto; 1 µs displayed = 1 cycle).
func (o *Obs) WriteChromeTrace(w io.Writer) error {
	return trace.WriteChromeTrace(w, o.Buf.Events())
}

// WriteMetrics exports the registry in Prometheus text format.
func (o *Obs) WriteMetrics(w io.Writer) error {
	return o.Reg.WritePrometheus(w)
}

// Profile attributes the simulation's cycles to tasks and load phases
// from the event stream.
func (o *Obs) Profile() *trace.Profile {
	return trace.BuildProfile(o.Buf.Events(), o.p.M.Cycles())
}

// ClockHz re-exports the simulated clock for exporter consumers.
const ClockHz = machine.ClockHz
