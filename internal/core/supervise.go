package core

import (
	"errors"

	"repro/internal/rtos"
	"repro/internal/sha1"
	"repro/internal/telf"
	"repro/internal/trusted"
)

// Supervision wiring: the trusted supervisor restarts faulted tasks by
// re-running the platform's loading sequence, so restarted incarnations
// get a fresh EA-MPU region and a fresh RTM measurement.

// supervisorPriority places the supervisor above normal workloads but
// below interrupt service — recovery decisions should not be starved by
// the tasks being recovered.
const supervisorPriority = 6

// ErrNoSupervisor is returned by Watch when supervision is not enabled.
var ErrNoSupervisor = errors.New("core: supervision not enabled")

// Reload implements trusted.Reloader: a supervisor restart is a normal
// asynchronous load.
func (p *Platform) Reload(im *telf.Image, kind rtos.TaskKind, prio int) trusted.ReloadTicket {
	return p.LoadTaskAsync(im, kind, prio)
}

// EnableSupervision boots the trusted supervisor as a service task and
// wires the kernel's exit hook to it. Idempotent.
func (p *Platform) EnableSupervision(pol trusted.SupervisorPolicy) (*trusted.Supervisor, error) {
	if p.C == nil {
		return nil, ErrBaselineOnly
	}
	if p.Sup != nil {
		return p.Sup, nil
	}
	sup := trusted.NewSupervisor(p.K, p.C.Attest, p, pol)
	if _, err := sup.Attach(supervisorPriority); err != nil {
		return nil, err
	}
	// When observability came first, the supervisor joins its sink (the
	// reverse order is handled by EnableObservability).
	sup.Obs = p.obs
	p.Sup = sup
	return sup, nil
}

// Watch places a loaded task under supervision, resolving its restart
// image and measured identity from the TCB and the RTM registry.
func (p *Platform) Watch(id rtos.TaskID) error {
	if p.Sup == nil {
		return ErrNoSupervisor
	}
	t, ok := p.K.Task(id)
	if !ok {
		return rtos.ErrNoSuchTask
	}
	var identity sha1.Digest
	im := t.Placement.Image
	if e, ok := p.C.RTM.LookupByTask(id); ok {
		identity = e.ID
		im = e.Image
	}
	p.Sup.Watch(t, im, identity)
	return nil
}
