package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/rtos"
	"repro/internal/trace"
	"repro/internal/trusted"
)

func signedMeter(t *testing.T, p *Platform, src string, version uint64) []byte {
	t.Helper()
	pkg, err := p.SignUpdate(mustImage(t, src), version)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestSecureUpdateEndToEnd(t *testing.T) {
	p := newTyTAN(t)
	o := p.EnableObservability()
	old, _, err := p.LoadTaskSync(mustImage(t, meterV1), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(200_000); err != nil {
		t.Fatal(err)
	}
	before := p.Output()
	if !strings.Contains(before, "1") {
		t.Fatalf("v1 not running: %q", before)
	}

	rep, err := p.ApplyUpdate(old.ID, signedMeter(t, p, meterV2, 2), 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromVersion != 0 || rep.ToVersion != 2 {
		t.Errorf("versions %d→%d, want 0→2", rep.FromVersion, rep.ToVersion)
	}
	if rep.NewIdentity != trusted.IdentityOfImage(mustImage(t, meterV2)) {
		t.Error("new identity mismatch")
	}
	// The in-band quote verifies out of band.
	if err := p.Provider("").Verifier().Verify(rep.Quote, rep.NewIdentity, 0xBEEF); err != nil {
		t.Errorf("post-update quote: %v", err)
	}
	if err := p.Run(200_000); err != nil {
		t.Fatal(err)
	}
	after := p.Output()[len(before):]
	if !strings.Contains(after, "2") || strings.Contains(after, "1") {
		t.Errorf("post-update output %q, want only v2's '2's", after)
	}
	// A downgrade through the platform surface is refused.
	if _, err := p.ApplyUpdate(rep.New, signedMeter(t, p, meterV1, 1), 0); !errors.Is(err, trusted.ErrUpdateDowngrade) {
		t.Errorf("downgrade = %v", err)
	}
	// Decisions reached the shared event stream and the gauges.
	var accepted, denied int
	for _, ev := range o.Events() {
		switch ev.Kind {
		case trace.KindUpdateAccepted:
			accepted++
		case trace.KindUpdateDenied:
			denied++
		}
	}
	if accepted != 1 || denied != 1 {
		t.Errorf("events: %d accepted, %d denied; want 1, 1", accepted, denied)
	}
	if c := p.updateCounts(); c.Accepted != 1 || c.Denied != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestSecureUpdateConfigurationGates(t *testing.T) {
	bp, err := NewPlatform(Options{Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.EnableSecureUpdate(); !errors.Is(err, ErrBaselineOnly) {
		t.Errorf("baseline EnableSecureUpdate = %v", err)
	}
	if _, err := bp.ApplyUpdate(1, nil, 0); !errors.Is(err, ErrBaselineOnly) {
		t.Errorf("baseline ApplyUpdate = %v", err)
	}

	sp, err := NewPlatform(Options{
		Static:     []StaticTask{{Image: mustImage(t, meterV1), Kind: Secure, Prio: 3}},
		StaticOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := sp.SignUpdate(mustImage(t, meterV2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.ApplyUpdate(2, pkg, 0); !errors.Is(err, ErrStaticConfig) {
		t.Errorf("static ApplyUpdate = %v", err)
	}
}

// TestSecureUpdateCounterSurvivesRestart: the sealed version counter is
// bound to the measured identity, not the task incarnation — a
// supervisor restart of the updated binary leaves rollback protection
// intact.
func TestSecureUpdateCounterSurvivesRestart(t *testing.T) {
	p := supervisedPlatform(t, trusted.SupervisorPolicy{
		MaxRestarts:  2,
		RestartDelay: 10_000,
	})
	old, _, err := p.LoadTaskSync(mustImage(t, meterV1), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.ApplyUpdate(old.ID, signedMeter(t, p, meterV2, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Watch(rep.New); err != nil {
		t.Fatal(err)
	}
	// Fault the updated task; the supervisor reloads the same binary —
	// same measured identity, so the restarted incarnation can unseal
	// the counter its predecessor sealed.
	if err := p.K.Kill(rep.New, rtos.ExitFault, "injected"); err != nil {
		t.Fatal(err)
	}
	restarted := func() bool {
		st, ok := p.Sup.Status("meter")
		return ok && st.State == trusted.WatchHealthy && st.Restarts == 1
	}
	if !runUntil(t, p, 5_000_000, restarted) {
		st, _ := p.Sup.Status("meter")
		t.Fatalf("no restart; status %+v", st)
	}
	st, _ := p.Sup.Status("meter")

	// Rollback protection survived the restart: same version refused...
	if _, err := p.ApplyUpdate(st.TaskID, signedMeter(t, p, meterV2, 5), 0); !errors.Is(err, trusted.ErrUpdateDowngrade) {
		t.Fatalf("equal version after restart = %v, want ErrUpdateDowngrade", err)
	}
	// ...and a fresher one still applies, seeing the persisted counter.
	rep2, err := p.ApplyUpdate(st.TaskID, signedMeter(t, p, meterV1, 6), 0)
	if err != nil {
		t.Fatalf("fresher update after restart: %v", err)
	}
	if rep2.FromVersion != 5 {
		t.Errorf("FromVersion after restart = %d, want 5", rep2.FromVersion)
	}
}

// TestSecureUpdateCounterMigratesWithIdentity: the live-update path
// (UpdateTask with slot migration) moves the version counter to the new
// identity, and the secure update service keeps enforcing monotonicity
// against it afterwards.
func TestSecureUpdateCounterMigratesWithIdentity(t *testing.T) {
	p := newTyTAN(t)
	old, _, err := p.LoadTaskSync(mustImage(t, meterV1), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.ApplyUpdate(old.ID, signedMeter(t, p, meterV2, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Owner-authorized live update, explicitly migrating the counter
	// slot alongside the identity change.
	res, err := p.UpdateTask(rep.New, mustImage(t, meterV1), []uint32{trusted.CounterSlot("meter")})
	if err != nil {
		t.Fatal(err)
	}
	// The migrated counter still blocks downgrades...
	if _, err := p.ApplyUpdate(res.New.ID, signedMeter(t, p, meterV2, 3), 0); !errors.Is(err, trusted.ErrUpdateDowngrade) {
		t.Fatalf("downgrade after migration = %v, want ErrUpdateDowngrade", err)
	}
	// ...and a fresher version reads it as its base.
	rep2, err := p.ApplyUpdate(res.New.ID, signedMeter(t, p, meterV2, 7), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FromVersion != 4 {
		t.Errorf("FromVersion after migration = %d, want 4", rep2.FromVersion)
	}
}

// fillerSrc runs a hot loop — guaranteed superblock compilation over
// its text — and periodically yields so other tasks run too.
const fillerSrc = `
.task "filler"
.entry main
.stack 128
.bss 28
.text
main:
    ldi r2, 0
hot:
    addi r2, 1
    cmpi r2, 200
    bne hot
    ldi32 r0, 3000
    svc 2
    jmp main
`

// lateSrc is loaded into the rolled-back extent after the aborted
// update: different code at the same addresses.
const lateSrc = `
.task "late"
.entry main
.stack 128
.bss 28
.text
main:
    ldi r1, 103   ; 'g'
loop:
    svc 5
    ldi32 r0, 40000
    svc 2
    jmp loop
`

// TestUpdateAbortInvalidatesCompiledCode: differential proof that an
// aborted mid-swap load invalidates compiled superblocks and decoded
// icache lines over the reverted extent. The sequence — compile hot
// code in a region, free it, stage an update into the hole, abort the
// swap, load different code at the same addresses — must behave
// bit-identically on the reference interpreter, the fast path and the
// superblock compiler.
func TestUpdateAbortInvalidatesCompiledCode(t *testing.T) {
	type outcome struct {
		out    string
		cycles uint64
	}
	var results []outcome
	for _, eng := range []Engine{EngineReference, EngineFastPath, EngineSuperblock} {
		p, err := NewPlatform(Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		app, _, err := p.LoadTaskSync(mustImage(t, meterV1), Secure, 3)
		if err != nil {
			t.Fatal(err)
		}
		filler, _, err := p.LoadTaskSync(mustImage(t, fillerSrc), Secure, 2)
		if err != nil {
			t.Fatal(err)
		}
		fillerBase := filler.Placement.Base
		// Run hot: the superblock engine compiles filler's loop.
		if err := p.Run(600_000); err != nil {
			t.Fatal(err)
		}
		if eng == EngineSuperblock && p.M.Stats().SBCompiles == 0 {
			t.Fatal("filler never compiled; test premise broken")
		}
		invalBefore := p.M.Stats().SBInvalidations + p.M.Stats().GenBumps

		// Free the compiled region, then stage an update into the hole
		// and abort the swap mid-install.
		if err := p.Unload(filler.ID); err != nil {
			t.Fatal(err)
		}
		u, err := p.EnableSecureUpdate()
		if err != nil {
			t.Fatal(err)
		}
		boom := errors.New("power fail")
		u.FaultHook = func(ph trusted.UpdatePhase) error {
			if ph == trusted.UpdateInstall {
				return boom
			}
			return nil
		}
		if _, err := p.ApplyUpdate(app.ID, signedMeter(t, p, meterV2, 2), 0); !errors.Is(err, trusted.ErrUpdateAborted) {
			t.Fatalf("Apply = %v, want ErrUpdateAborted", err)
		}
		u.FaultHook = nil

		// Different code into the same extent: stale compiled blocks or
		// decoded lines over the old bytes would now execute wrong code.
		late, _, err := p.LoadTaskSync(mustImage(t, lateSrc), Secure, 2)
		if err != nil {
			t.Fatal(err)
		}
		if late.Placement.Base != fillerBase {
			t.Fatalf("late task at %#x, want reuse of %#x", late.Placement.Base, fillerBase)
		}
		if err := p.Run(400_000); err != nil {
			t.Fatal(err)
		}
		if eng == EngineSuperblock {
			if after := p.M.Stats().SBInvalidations + p.M.Stats().GenBumps; after == invalBefore {
				t.Error("abort/reload left compiled code uninvalidated")
			}
		}
		// The old app survived the abort and the late task runs.
		out := p.Output()
		if !strings.Contains(out, "g") {
			t.Errorf("engine %v: late task never ran: %q", eng, out)
		}
		if !strings.Contains(out[len(out)/2:], "1") {
			t.Errorf("engine %v: app not running after rollback: %q", eng, out)
		}
		results = append(results, outcome{out: out, cycles: p.Cycles()})
		p.Close()
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Errorf("engine %d diverged: %d cycles vs %d, output %q vs %q",
				i, results[i].cycles, results[0].cycles, results[i].out, results[0].out)
		}
	}
}
