package core

import (
	"repro/internal/rtos"
	"repro/internal/telf"
	"repro/internal/trusted"
)

// Secure over-the-air update surface. The platform integrator's view of
// internal/trusted's Updater: enable the service once, sign packages
// with the provider's update key, and apply them to running secure
// tasks with rollback protection and abort-safe swap semantics (see
// internal/trusted/update.go for the pipeline).

// EnableSecureUpdate instantiates the trusted update service for the
// platform's default provider. Idempotent; TyTAN configuration only.
// If observability is on (before or after this call), update decisions
// flow into the same event stream.
func (p *Platform) EnableSecureUpdate() (*trusted.Updater, error) {
	if p.C == nil {
		return nil, ErrBaselineOnly
	}
	if p.updater != nil {
		return p.updater, nil
	}
	u, err := trusted.NewUpdater(p.K, p.C, p.provider)
	if err != nil {
		return nil, err
	}
	u.Obs = p.obs
	p.updater = u
	return u, nil
}

// SecureUpdate returns the update service if EnableSecureUpdate has run.
func (p *Platform) SecureUpdate() *trusted.Updater { return p.updater }

// SignUpdate wraps an image in a signed update manifest under the
// platform default provider's update key — the build-system side of the
// update path, here for tests, the simulator CLI and the harness. A
// real deployment signs offline with the provisioned key.
func (p *Platform) SignUpdate(im *telf.Image, version uint64) ([]byte, error) {
	return telf.Sign(im, version, trusted.DeriveUpdateKey(p.platformKey, p.provider))
}

// ApplyUpdate runs the full secure update pipeline on a loaded secure
// task: verify signature, enforce the sealed monotonic counter, stage,
// swap abort-safely, and re-attest under nonce. Enables the service on
// first use. Refused on statically configured platforms — runtime task
// replacement is exactly what TrustLite-style static configuration
// forbids.
func (p *Platform) ApplyUpdate(id rtos.TaskID, pkg []byte, nonce uint64) (*trusted.UpdateReport, error) {
	if p.staticOnly {
		return nil, ErrStaticConfig
	}
	u, err := p.EnableSecureUpdate()
	if err != nil {
		return nil, err
	}
	return u.Apply(id, pkg, nonce)
}
