package core

import (
	"errors"
	"testing"

	"repro/internal/rtos"
	"repro/internal/trusted"
)

const meterV1 = `
.task "meter"
.entry main
.stack 192
.bss 28
.text
main:
    ldi r1, 49    ; '1'
loop:
    svc 5
    ldi r0, 30000
    svc 2
    jmp loop
`

const meterV2 = `
.task "meter"
.entry main
.stack 192
.bss 28
.text
main:
    ldi r1, 50    ; '2'
loop:
    svc 5
    ldi r0, 30000
    svc 2
    jmp loop
`

func TestUpdateTaskSwitchesVersions(t *testing.T) {
	p := newTyTAN(t)
	v1 := mustImage(t, meterV1)
	v2 := mustImage(t, meterV2)
	old, oldID, err := p.LoadTaskSync(v1, Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(200_000); err != nil {
		t.Fatal(err)
	}
	beforeOut := p.Output()
	if len(beforeOut) == 0 || beforeOut[len(beforeOut)-1] != '1' {
		t.Fatalf("v1 not running: %q", beforeOut)
	}

	res, err := p.UpdateTask(old.ID, v2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewIdentity == oldID {
		t.Error("update did not change the identity")
	}
	if res.NewIdentity != trusted.IdentityOfImage(v2) {
		t.Error("new identity mismatch")
	}
	if _, ok := p.K.Task(old.ID); ok {
		t.Error("old task still present")
	}
	if res.New.Priority != old.Priority {
		t.Error("priority not inherited")
	}
	// Downtime is bounded kernel work, far below a scheduling period.
	if res.DowntimeCycles > DefaultTickPeriod/4 {
		t.Errorf("downtime = %d cycles, want far below one period", res.DowntimeCycles)
	}

	if err := p.Run(200_000); err != nil {
		t.Fatal(err)
	}
	afterOut := p.Output()[len(beforeOut):]
	if len(afterOut) == 0 {
		t.Fatal("v2 never ran")
	}
	for i := 0; i < len(afterOut); i++ {
		if afterOut[i] != '2' {
			t.Fatalf("output after update contains %q, want only '2': %q", afterOut[i], afterOut)
		}
	}
}

func TestUpdateMigratesSealedState(t *testing.T) {
	p := newTyTAN(t)
	v1 := mustImage(t, meterV1)
	v2 := mustImage(t, meterV2)
	old, _, err := p.LoadTaskSync(v1, Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("odometer=123456")
	if err := p.Seal(old.ID, 4, secret); err != nil {
		t.Fatal(err)
	}

	res, err := p.UpdateTask(old.ID, v2, []uint32{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MigratedSlots) != 1 || res.MigratedSlots[0] != 4 {
		t.Errorf("migrated = %v", res.MigratedSlots)
	}
	got, err := p.Unseal(res.New.ID, 4)
	if err != nil || string(got) != string(secret) {
		t.Fatalf("new version unseal = %q, %v", got, err)
	}
}

func TestUpdateWithoutMigrationLosesAccess(t *testing.T) {
	p := newTyTAN(t)
	v1 := mustImage(t, meterV1)
	v2 := mustImage(t, meterV2)
	old, _, err := p.LoadTaskSync(v1, Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Seal(old.ID, 4, []byte("x")); err != nil {
		t.Fatal(err)
	}
	res, err := p.UpdateTask(old.ID, v2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Unseal(res.New.ID, 4); !errors.Is(err, trusted.ErrSealDenied) {
		t.Errorf("unmigrated unseal = %v, want ErrSealDenied", err)
	}
}

func TestUpdateTransfersMailbox(t *testing.T) {
	p := newTyTAN(t)
	v1 := mustImage(t, meterV1)
	v2 := mustImage(t, meterV2)
	old, oldID, err := p.LoadTaskSync(v1, Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A peer sends a message that the old version never consumes.
	peer, _, err := p.LoadTaskSync(mustImage(t, helloSrc), Secure, 2)
	if err != nil {
		t.Fatal(err)
	}
	status := p.C.Proxy.Send(p.K, peer, oldID.TruncatedID(), []uint32{0xCAFE}, 4, false)
	if status != trusted.IPCStatusOK {
		t.Fatalf("send status %d", status)
	}

	res, err := p.UpdateTask(old.ID, v2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The pending message now sits in the new version's mailbox.
	e, ok := p.C.RTM.LookupByTask(res.New.ID)
	if !ok {
		t.Fatal("new task unregistered")
	}
	box, _ := trusted.MailboxAddr(e)
	read := func(off uint32) uint32 {
		var v uint32
		p.M.WithExecContext(res.New.Placement.Base, func() { v, _ = p.M.Read32(box + off) })
		return v
	}
	if read(0) != 1 || read(16) != 0xCAFE {
		t.Errorf("mailbox after update: flag=%d payload=%#x", read(0), read(16))
	}
}

func TestUpdateErrors(t *testing.T) {
	p := newTyTAN(t)
	v2 := mustImage(t, meterV2)
	if _, err := p.UpdateTask(999, v2, nil); !errors.Is(err, rtos.ErrNoSuchTask) {
		t.Errorf("unknown task = %v", err)
	}
	norm, _, err := p.LoadTaskSync(mustImage(t, meterV1), Normal, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.UpdateTask(norm.ID, v2, nil); err == nil {
		t.Error("normal task updated")
	}
	// Baseline platform cannot update.
	bp, err := NewPlatform(Options{Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.UpdateTask(1, v2, nil); !errors.Is(err, ErrBaselineOnly) {
		t.Errorf("baseline update = %v", err)
	}
	// Migrating an empty slot fails and rolls the update back.
	sec, _, err := p.LoadTaskSync(mustImage(t, meterV2), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.UpdateTask(sec.ID, mustImage(t, meterV1), []uint32{77}); err == nil {
		t.Error("migration of empty slot succeeded")
	}
	if _, ok := p.K.Task(sec.ID); !ok {
		t.Error("failed update removed the old task")
	}
}

const overflowTask = `
.task "overflow"
.entry main
.stack 128
.bss 28
.text
main:
    call main       ; unbounded recursion
`

func TestStackOverflowKillsTask(t *testing.T) {
	p := newTyTAN(t)
	bad, _, err := p.LoadTaskSync(mustImage(t, overflowTask), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	good, _, err := p.LoadTaskSync(mustImage(t, helloSrc), Secure, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = good
	if err := p.Run(20 * DefaultTickPeriod); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.K.Task(bad.ID); ok {
		t.Error("overflowing task survived")
	}
	if p.Output() != "hi" {
		t.Errorf("lower-priority task output %q; overflow not contained", p.Output())
	}
}
