package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/machine"
	"repro/internal/rtos"
	"repro/internal/telf"
	"repro/internal/trusted"
)

func newTyTAN(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustImage(t *testing.T, src string) *telf.Image {
	t.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

const helloSrc = `
.task "hello"
.entry main
.stack 128
.bss 28
.text
main:
    ldi r1, 104   ; 'h'
    svc 5
    ldi r1, 105   ; 'i'
    svc 5
    svc 1
`

func TestPlatformBootAndRunSecureTask(t *testing.T) {
	p := newTyTAN(t)
	im := mustImage(t, helloSrc)
	tcb, id, err := p.LoadTaskSync(im, Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if id != trusted.IdentityOfImage(im) {
		t.Error("sync load identity mismatch")
	}
	if tcb.Kind != rtos.KindSecure {
		t.Errorf("kind = %v", tcb.Kind)
	}
	if err := p.Run(500_000); err != nil {
		t.Fatal(err)
	}
	if p.Output() != "hi" {
		t.Errorf("output = %q", p.Output())
	}
}

func TestBaselinePlatform(t *testing.T) {
	p, err := NewPlatform(Options{Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Baseline() {
		t.Fatal("not baseline")
	}
	im := mustImage(t, helloSrc)
	if _, _, err := p.LoadTaskSync(im, Normal, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(500_000); err != nil {
		t.Fatal(err)
	}
	if p.Output() != "hi" {
		t.Errorf("output = %q", p.Output())
	}
	// TyTAN-only operations are rejected.
	if _, err := p.Provider("").Quote(1, 1); !errors.Is(err, ErrBaselineOnly) {
		t.Errorf("Quote on baseline = %v", err)
	}
	if err := p.Seal(1, 0, nil); !errors.Is(err, ErrBaselineOnly) {
		t.Errorf("Seal on baseline = %v", err)
	}
	if strings.Contains(p.Describe(), "trusted components") {
		t.Error("baseline Describe mentions trusted components")
	}
}

func TestAsyncLoadCompletes(t *testing.T) {
	p := newTyTAN(t)
	im := mustImage(t, helloSrc)
	req := p.LoadTaskAsync(im, Secure, 3)
	if req.Done() {
		t.Fatal("async load done before running")
	}
	if err := p.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !req.Done() {
		t.Fatalf("load not done (phase %v)", req.Phase())
	}
	if req.Err() != nil {
		t.Fatal(req.Err())
	}
	if req.Identity() != trusted.IdentityOfImage(im) {
		t.Error("async identity mismatch")
	}
	if req.EndCycle <= req.StartCycle {
		t.Error("load timing not recorded")
	}
	if p.Output() != "hi" {
		t.Errorf("output = %q", p.Output())
	}
	b := req.Breakdown
	for name, v := range map[string]uint64{
		"alloc": b.Alloc, "copy": b.Copy, "reloc": b.Reloc,
		"install": b.Install, "protect": b.Protect, "measure": b.Measure,
	} {
		if v == 0 {
			t.Errorf("breakdown %s = 0", name)
		}
	}
}

func TestAsyncLoadFailure(t *testing.T) {
	p := newTyTAN(t)
	im := &telf.Image{Name: "huge", Text: make([]byte, 4), StackSize: 1 << 25}
	req := p.LoadTaskAsync(im, Secure, 3)
	if err := p.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !req.Done() || req.Err() == nil {
		t.Fatalf("oversized load: done=%v err=%v", req.Done(), req.Err())
	}
	if !errors.Is(req.Err(), ErrLoadFailed) {
		t.Errorf("err = %v", req.Err())
	}
}

func TestUnloadSuspendResumeAPI(t *testing.T) {
	p := newTyTAN(t)
	im := mustImage(t, `
.task "spin"
.entry main
.stack 128
.bss 28
.text
main:
    jmp main
`)
	tcb, _, err := p.LoadTaskSync(im, Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if err := p.Suspend(tcb.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.Resume(tcb.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.Unload(tcb.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Identity(tcb.ID); err == nil {
		t.Error("identity of unloaded task resolvable")
	}
}

func TestQuoteRoundTrip(t *testing.T) {
	p := newTyTAN(t)
	im := mustImage(t, helloSrc)
	tcb, _, err := p.LoadTaskSync(im, Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.Provider("").Quote(tcb.ID, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Provider("").Verifier().Verify(q, trusted.IdentityOfImage(im), 42); err != nil {
		t.Fatal(err)
	}
}

func TestSealUnsealAPI(t *testing.T) {
	p := newTyTAN(t)
	im := mustImage(t, helloSrc)
	tcb, _, err := p.LoadTaskSync(im, Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Seal(tcb.ID, 7, []byte("state")); err != nil {
		t.Fatal(err)
	}
	got, err := p.Unseal(tcb.ID, 7)
	if err != nil || string(got) != "state" {
		t.Fatalf("unseal = %q, %v", got, err)
	}
}

func TestDescribe(t *testing.T) {
	p := newTyTAN(t)
	d := p.Describe()
	for _, want := range []string{"TyTAN", "RTM", "boot report", "1.5 kHz"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

// controlTaskSrc is a periodic sensor→actuator control task: read the
// pedal and radar sensors, combine, command the engine, sleep one
// period. Engine commands timestamp each activation.
const controlTaskSrc = `
.task "control"
.entry main
.stack 192
.bss 28
.text
main:
    ldi32 r6, 0xF0000200   ; pedal sensor
    ldi32 r5, 0xF0000300   ; radar sensor
    ldi32 r4, 0xF0000500   ; engine actuator
loop:
    ld r0, [r6+0]
    ld r1, [r5+0]
    add r0, r1
    st [r4+0], r0
    ldi r0, 30500          ; sleep ~1 tick period
    svc 2
    jmp loop
`

// monitorTaskSrc samples the pedal sensor each period (t1's role).
const monitorTaskSrc = `
.task "monitor"
.entry main
.stack 192
.bss 28
.text
main:
    ldi32 r6, 0xF0000200
loop:
    ld r0, [r6+0]
    ldi r0, 30500
    svc 2
    jmp loop
`

// TestUseCaseRealTimeUnderLoad reproduces the Table 1 property: two
// 1.5 kHz tasks keep their rate before, during and after an
// asynchronous load whose total work exceeds one scheduling period.
func TestUseCaseRealTimeUnderLoad(t *testing.T) {
	p := newTyTAN(t)
	ctrl := mustImage(t, controlTaskSrc)
	mon := mustImage(t, monitorTaskSrc)
	if _, _, err := p.LoadTaskSync(ctrl, Secure, 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.LoadTaskSync(mon, Secure, 5); err != nil {
		t.Fatal(err)
	}

	// t2: a sizeable image so the load spans many periods.
	t2 := &telf.Image{
		Name:      "radar2",
		Text:      mustImage(t, monitorTaskSrc).Text,
		Data:      make([]byte, 8_000),
		StackSize: 256,
		BSSSize:   28,
	}

	const phase = 50 * DefaultTickPeriod // ≈33 ms per observation window

	countIn := func(from, to uint64) int {
		n := 0
		for _, c := range p.Engine.Commands() {
			if c.Cycle >= from && c.Cycle < to {
				n++
			}
		}
		return n
	}

	// Phase 1: before loading.
	s1 := p.Cycles()
	if err := p.Run(phase); err != nil {
		t.Fatal(err)
	}
	e1 := p.Cycles()

	// Phase 2: while loading t2.
	req := p.LoadTaskAsync(t2, Secure, 2)
	s2 := p.Cycles()
	if err := p.Run(phase); err != nil {
		t.Fatal(err)
	}
	e2 := p.Cycles()
	if !req.Done() {
		t.Fatalf("t2 load still %v after one phase; want done within the window", req.Phase())
	}
	loadCycles := req.EndCycle - req.StartCycle
	if loadCycles < 2*DefaultTickPeriod {
		t.Errorf("t2 load took %d cycles; want > 2 periods so the test is meaningful", loadCycles)
	}

	// Phase 3: after loading.
	s3 := p.Cycles()
	if err := p.Run(phase); err != nil {
		t.Fatal(err)
	}
	e3 := p.Cycles()

	// The control task must hold its rate in all three phases (40
	// periods → ≈50 activations, allow slack for phase boundaries).
	for i, w := range []struct{ from, to uint64 }{{s1, e1}, {s2, e2}, {s3, e3}} {
		got := countIn(w.from, w.to)
		if got < 45 || got > 55 {
			t.Errorf("phase %d: %d engine commands in 50 periods, want ≈50", i+1, got)
		}
	}
}

func TestLoaderServiceBounded(t *testing.T) {
	// The loader must never run longer than its quantum per dispatch:
	// watch the biggest uninterrupted gap between engine commands while
	// a load is in flight (deadline jitter proxy).
	p := newTyTAN(t)
	ctrl := mustImage(t, controlTaskSrc)
	if _, _, err := p.LoadTaskSync(ctrl, Secure, 5); err != nil {
		t.Fatal(err)
	}
	big := &telf.Image{Name: "big", Text: make([]byte, 64), Data: make([]byte, 20_000), StackSize: 128}
	p.LoadTaskAsync(big, Secure, 2)
	if err := p.Run(80 * DefaultTickPeriod); err != nil {
		t.Fatal(err)
	}
	cmds := p.Engine.Commands()
	if len(cmds) < 10 {
		t.Fatalf("only %d activations", len(cmds))
	}
	var worst uint64
	for i := 1; i < len(cmds); i++ {
		gap := cmds[i].Cycle - cmds[i-1].Cycle
		if gap > worst {
			worst = gap
		}
	}
	// Period ≈ 31k + overheads; anything beyond 2 periods means the
	// loader blocked the control task.
	if worst > 2*DefaultTickPeriod {
		t.Errorf("worst activation gap = %d cycles (> 2 periods)", worst)
	}
}

func TestSensorsAndEngineWiring(t *testing.T) {
	p := newTyTAN(t)
	if v := p.Pedal.Read(machine.SensorRegValue); v > 100 {
		t.Errorf("pedal = %d", v)
	}
	if p.Radar.Name() != "radar" || p.Pedal.Name() != "pedal" {
		t.Error("sensor names")
	}
	p.Engine.Write(machine.EngineRegSpeed, 55)
	if p.Engine.Read(machine.EngineRegSpeed) != 55 {
		t.Error("engine readback")
	}
}

func TestPerProviderQuotes(t *testing.T) {
	p := newTyTAN(t)
	im := mustImage(t, helloSrc)
	tcb, _, err := p.LoadTaskSync(im, Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	expected := trusted.IdentityOfImage(im)
	const nonce = 99

	qa, err := p.Provider("tier1").Quote(tcb.ID, nonce)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := p.Provider("oem").Quote(tcb.ID, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if qa.MAC == qb.MAC {
		t.Error("providers share attestation MACs")
	}
	if err := p.Provider("tier1").Verifier().Verify(qa, expected, nonce); err != nil {
		t.Errorf("tier1 quote rejected: %v", err)
	}
	if err := p.Provider("oem").Verifier().Verify(qb, expected, nonce); err != nil {
		t.Errorf("oem quote rejected: %v", err)
	}
	// Cross-provider verification fails: stakeholders cannot verify (or
	// forge) each other's reports.
	if err := p.Provider("oem").Verifier().Verify(qa, expected, nonce); err == nil {
		t.Error("oem verified tier1's quote")
	}
	if _, err := p.Provider("x").Quote(999, 1); err == nil {
		t.Error("quoted unknown task")
	}
}

// shareMemSrc requests a shared window with a provisioned peer, writes
// a word into it, and reports the window address over IPC-free UART
// bytes (status only).
const shareMemSrc = `
.task "sharer"
.entry main
.stack 192
.bss 28
.text
main:
    ldi32 r5, peer
    ld r1, [r5+0]
    ld r2, [r5+4]
    ldi32 r3, 4096
    svc 24            ; share-mem: r0 status, r1 window
    cmpi r0, 0
    bne fail
    ldi r4, 0x77
    st [r1+0], r4     ; write into the window
    ldi r1, 79        ; 'O'
    svc 5
    svc 1
fail:
    ldi r1, 70        ; 'F'
    svc 5
    svc 1
.data
peer:
    .word 0
    .word 0
`

func TestShareMemSyscall(t *testing.T) {
	p := newTyTAN(t)
	peerIm := GenTestImage(t, "peer")
	peer, peerID, err := p.LoadTaskSync(peerIm, Secure, 2)
	if err != nil {
		t.Fatal(err)
	}
	im := mustImage(t, shareMemSrc)
	tr := peerID.TruncatedID()
	patchWord(im.Data[0:], uint32(tr))
	patchWord(im.Data[4:], uint32(tr>>32))
	if _, _, err := p.LoadTaskSync(im, Secure, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if got := p.Output(); got != "O" {
		t.Fatalf("sharer output = %q, want \"O\"", got)
	}
	_ = peer
}

func TestStaticConfiguration(t *testing.T) {
	im := mustImage(t, helloSrc)
	p, err := NewPlatform(Options{
		Static:     []StaticTask{{Image: im, Kind: Secure, Prio: 3}},
		StaticOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.StaticOnly() {
		t.Fatal("StaticOnly not set")
	}
	// The boot-time task runs normally.
	if err := p.Run(500_000); err != nil {
		t.Fatal(err)
	}
	if p.Output() != "hi" {
		t.Errorf("static task output = %q", p.Output())
	}
	// Runtime management is refused.
	if _, _, err := p.LoadTaskSync(im, Secure, 3); !errors.Is(err, ErrStaticConfig) {
		t.Errorf("runtime sync load = %v", err)
	}
	req := p.LoadTaskAsync(im, Secure, 3)
	if !req.Done() || !errors.Is(req.Err(), ErrStaticConfig) {
		t.Errorf("runtime async load = %v", req.Err())
	}
	if err := p.Unload(1); !errors.Is(err, ErrStaticConfig) {
		t.Errorf("runtime unload = %v", err)
	}
	if _, err := p.UpdateTask(1, im, nil); !errors.Is(err, ErrStaticConfig) {
		t.Errorf("runtime update = %v", err)
	}
}

func TestStaticBootFailureSurfaces(t *testing.T) {
	huge := &telf.Image{Name: "huge", Text: make([]byte, 4), StackSize: 1 << 25}
	if _, err := NewPlatform(Options{Static: []StaticTask{{Image: huge, Kind: Secure, Prio: 3}}}); err == nil {
		t.Error("oversized static task accepted")
	}
}

func TestMultipleAsyncLoadsQueue(t *testing.T) {
	p := newTyTAN(t)
	var reqs []*LoadRequest
	for i := 0; i < 3; i++ {
		reqs = append(reqs, p.LoadTaskAsync(GenTestImage(t, "q"+itoa(i)), Secure, 2))
	}
	if err := p.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		if !r.Done() || r.Err() != nil {
			t.Errorf("load %d: done=%v err=%v phase=%v", i, r.Done(), r.Err(), r.Phase())
		}
	}
	// Loads completed in FIFO order.
	for i := 1; i < len(reqs); i++ {
		if reqs[i].EndCycle < reqs[i-1].EndCycle {
			t.Errorf("load %d finished before load %d", i, i-1)
		}
	}
}

func TestDescribeIncludesFigure(t *testing.T) {
	p := newTyTAN(t)
	if err := p.Run(10_000); err != nil {
		t.Fatal(err)
	}
	d := p.Describe()
	for _, want := range []string{"trusted", "hardware", "EA-MPU", "utilization"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q", want)
		}
	}
}
