package core

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/trace"
	"repro/internal/trusted"
)

// observedScenario runs a fixed supervised workload — a crashing task
// burning its restart budget beside a clean exiter — and returns the
// platform. With observe set the observability layer is on from boot.
func observedScenario(t *testing.T, observe bool) *Platform {
	t.Helper()
	p := newTyTAN(t)
	if observe {
		p.EnableObservability()
	}
	if _, err := p.EnableSupervision(trusted.SupervisorPolicy{
		MaxRestarts:  2,
		RestartDelay: 10_000,
	}); err != nil {
		t.Fatal(err)
	}
	crashy, _, err := p.LoadTaskSync(mustImage(t, crashySrc), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Watch(crashy.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.LoadTaskSync(mustImage(t, helloSrc), Secure, 3); err != nil {
		t.Fatal(err)
	}
	quarantined := func() bool {
		st, ok := p.Sup.Status("crashy")
		return ok && st.State == trusted.WatchQuarantined
	}
	if !runUntil(t, p, 20_000_000, quarantined) {
		t.Fatalf("crashy never quarantined; events %+v", p.Sup.Events())
	}
	return p
}

// TestObservabilityZeroImpact: the same workload with and without the
// observability layer lands on the identical cycle count — emission is
// a pure lens over the simulation.
func TestObservabilityZeroImpact(t *testing.T) {
	plain := observedScenario(t, false)
	defer plain.Close()
	observed := observedScenario(t, true)
	defer observed.Close()

	if plain.Cycles() != observed.Cycles() {
		t.Errorf("cycle counts diverged: plain %d, observed %d", plain.Cycles(), observed.Cycles())
	}
	if a, b := plain.K.Switches(), observed.K.Switches(); a != b {
		t.Errorf("dispatch counts diverged: %d != %d", a, b)
	}
	if a, b := plain.M.Stats(), observed.M.Stats(); a != b {
		t.Errorf("machine stats diverged: %+v != %+v", a, b)
	}
}

// monitoredScenario is observedScenario with a live SLO monitor wired
// in as an extra sink, emitting violation events back into the buffer.
func monitoredScenario(t *testing.T, spec *analyze.Spec) (*Platform, *analyze.Monitor) {
	t.Helper()
	p := newTyTAN(t)
	monitor := analyze.NewMonitor(spec, nil)
	obs := p.EnableObservability(monitor)
	monitor.SetOutput(obs.Buf)
	if _, err := p.EnableSupervision(trusted.SupervisorPolicy{
		MaxRestarts:  2,
		RestartDelay: 10_000,
	}); err != nil {
		t.Fatal(err)
	}
	crashy, _, err := p.LoadTaskSync(mustImage(t, crashySrc), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Watch(crashy.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.LoadTaskSync(mustImage(t, helloSrc), Secure, 3); err != nil {
		t.Fatal(err)
	}
	quarantined := func() bool {
		st, ok := p.Sup.Status("crashy")
		return ok && st.State == trusted.WatchQuarantined
	}
	if !runUntil(t, p, 20_000_000, quarantined) {
		t.Fatalf("crashy never quarantined; events %+v", p.Sup.Events())
	}
	return p, monitor
}

// TestMonitorZeroImpact: an attached — and actively firing — SLO
// monitor must not move a single simulated cycle, and the event stream
// must be identical to an unmonitored run once the injected violation
// events are filtered out. This is the acceptance contract: analysis is
// a pure lens.
func TestMonitorZeroImpact(t *testing.T) {
	// A bound of 1 cycle is violated by every IRQ span, so the online
	// path fires (the hardest case for the zero-impact contract).
	spec, err := analyze.ParseSpecString("irq_latency max <= 1c\ndeadline_miss == 0\n")
	if err != nil {
		t.Fatal(err)
	}

	plain := observedScenario(t, false)
	defer plain.Close()
	observed := observedScenario(t, true)
	defer observed.Close()
	monitored, monitor := monitoredScenario(t, spec)
	defer monitored.Close()

	if plain.Cycles() != monitored.Cycles() {
		t.Errorf("cycle counts diverged: plain %d, monitored %d", plain.Cycles(), monitored.Cycles())
	}
	if a, b := plain.K.Switches(), monitored.K.Switches(); a != b {
		t.Errorf("dispatch counts diverged: %d != %d", a, b)
	}
	if a, b := plain.M.Stats(), monitored.M.Stats(); a != b {
		t.Errorf("machine stats diverged: %+v != %+v", a, b)
	}

	// The monitor must actually have fired (otherwise this test proves
	// nothing) — exactly once per rule, injected into the buffer.
	if n := monitor.Violations(); n != 1 {
		t.Fatalf("monitor violations = %d, want 1 (irq rule only)", n)
	}
	var injected, rest []trace.Event
	for _, e := range monitored.Observability().Events() {
		if e.Kind == trace.KindSLOViolation {
			injected = append(injected, e)
		} else {
			rest = append(rest, e)
		}
	}
	if len(injected) != 1 {
		t.Errorf("injected violation events = %d, want 1", len(injected))
	}
	if !reflect.DeepEqual(rest, observed.Observability().Events()) {
		t.Errorf("monitored stream (minus violations) diverged from observed stream: %d vs %d events",
			len(rest), len(observed.Observability().Events()))
	}
}

// TestEventStreamDeterminism: two runs of the same scenario emit
// deeply equal event streams, and the stream is cycle-ordered.
func TestEventStreamDeterminism(t *testing.T) {
	a := observedScenario(t, true)
	defer a.Close()
	b := observedScenario(t, true)
	defer b.Close()

	ea, eb := a.Observability().Events(), b.Observability().Events()
	if len(ea) == 0 {
		t.Fatal("no events emitted")
	}
	if !reflect.DeepEqual(ea, eb) {
		t.Fatalf("event streams diverged: %d vs %d events", len(ea), len(eb))
	}
	for i := 1; i < len(ea); i++ {
		if ea[i].Cycle < ea[i-1].Cycle {
			t.Fatalf("event %d out of order: cycle %d after %d", i, ea[i].Cycle, ea[i-1].Cycle)
		}
	}
}

// TestMetricsUnderSupervision: the exported metrics agree with the
// supervisor's audit trail across restart and quarantine, and the
// denial counter moves when a quarantined identity is quoted.
func TestMetricsUnderSupervision(t *testing.T) {
	p := observedScenario(t, true)
	defer p.Close()
	obs := p.Observability()

	scrape := func() map[string]float64 {
		var buf bytes.Buffer
		if err := obs.WriteMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		m, err := trace.ParsePrometheus(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("metrics do not scrape: %v\n%s", err, buf.String())
		}
		return m
	}
	m := scrape()
	// crashy faults three times (original + 2 restarts), restarts
	// twice, quarantines once; hello ends cleanly.
	checks := map[string]float64{
		"tytan_sup_faults":      3,
		"tytan_sup_restarts":    2,
		"tytan_sup_quarantines": 1,
	}
	for name, want := range checks {
		if got := m[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if m["tytan_kernel_switches"] == 0 || m["tytan_machine_insn_retired"] == 0 {
		t.Error("kernel/machine gauges not populated")
	}
	if m["tytan_eampu_violations"] < 3 {
		t.Errorf("tytan_eampu_violations = %v, want ≥3", m["tytan_eampu_violations"])
	}

	// A quote of the quarantined identity is denied and counted.
	st, _ := p.Sup.Status("crashy")
	deniedBefore := m["tytan_attest_denials"]
	if _, err := p.Provider("").Quote(st.TaskID, 1); err == nil {
		t.Fatal("quote of quarantined task succeeded")
	}
	if got := scrape()["tytan_attest_denials"]; got != deniedBefore+1 {
		t.Errorf("tytan_attest_denials = %v, want %v", got, deniedBefore+1)
	}

	// The supervisor counters match the audit-trail event counts.
	counts := p.Sup.Counts()
	if int(counts.Faults) != countEvents(p.Sup, "fault") {
		t.Errorf("SupCounts.Faults = %d, events = %d", counts.Faults, countEvents(p.Sup, "fault"))
	}
	if int(counts.Restarts) != countEvents(p.Sup, "restart") {
		t.Errorf("SupCounts.Restarts = %d, events = %d", counts.Restarts, countEvents(p.Sup, "restart"))
	}
}

// TestObsExportRoundTrips: the Chrome trace export decodes back to the
// exact event stream, and the profile attributes cycles to the tasks
// and load phases the scenario actually exercised.
func TestObsExportRoundTrips(t *testing.T) {
	p := observedScenario(t, true)
	defer p.Close()
	obs := p.Observability()

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Chrome trace does not parse: %v", err)
	}
	if !reflect.DeepEqual(decoded, obs.Events()) {
		t.Fatalf("Chrome round-trip lost information: %d vs %d events", len(decoded), len(obs.Events()))
	}

	prof := obs.Profile()
	if prof.TotalCycles != p.Cycles() {
		t.Errorf("profile total = %d, want %d", prof.TotalCycles, p.Cycles())
	}
	var sawCrashy bool
	for _, tc := range prof.Tasks {
		if tc.Name == "crashy" && tc.Cycles > 0 {
			sawCrashy = true
		}
	}
	if !sawCrashy {
		t.Error("profile attributes no cycles to crashy")
	}
	if len(prof.LoadPhases) == 0 {
		t.Error("profile has no load-phase breakdown")
	}
	if !strings.Contains(prof.String(), "crashy") {
		t.Error("profile report does not mention crashy")
	}
}

// TestProviderHandle: the provider-scoped handle quotes and verifies
// end to end, the empty name selects the platform default, and the
// deprecated wrappers still agree with it.
func TestProviderHandle(t *testing.T) {
	p, err := NewPlatform(Options{Provider: "oem"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tcb, identity, err := p.LoadTaskSync(mustImage(t, helloSrc), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}

	oem := p.Provider("oem")
	if oem.Name() != "oem" {
		t.Errorf("Name() = %q", oem.Name())
	}
	q, err := oem.Quote(tcb.ID, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := oem.Verifier().Verify(q, identity, 42); err != nil {
		t.Errorf("handle verifier rejects handle quote: %v", err)
	}

	// Empty name = platform default.
	def := p.Provider("")
	if def.Name() != "oem" {
		t.Errorf("default handle name = %q, want oem", def.Name())
	}
	qd, err := def.Quote(tcb.ID, 42)
	if err != nil {
		t.Fatal(err)
	}
	if qd.MAC != q.MAC {
		t.Error("default-provider quote differs from named-provider quote")
	}
	if err := def.Verifier().Verify(q, identity, 42); err != nil {
		t.Errorf("default verifier rejects named-provider quote: %v", err)
	}

	// A distinct provider derives a distinct key.
	other, err := p.Provider("vendor-b").Quote(tcb.ID, 42)
	if err != nil {
		t.Fatal(err)
	}
	if other.MAC == q.MAC {
		t.Error("distinct providers produced the same MAC")
	}
	if err := p.Provider("vendor-b").Verifier().Verify(other, identity, 42); err != nil {
		t.Errorf("vendor-b verifier rejects vendor-b quote: %v", err)
	}

	// Baseline platforms refuse quotes but still hand out verifiers.
	bp, err := NewPlatform(Options{Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer bp.Close()
	if _, err := bp.Provider("oem").Quote(1, 1); !errors.Is(err, ErrBaselineOnly) {
		t.Errorf("baseline quote = %v, want ErrBaselineOnly", err)
	}
	if bp.Provider("oem").Verifier() == nil {
		t.Error("baseline verifier is nil")
	}
}
