package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/eampu"
	"repro/internal/machine"
	"repro/internal/rtos"
	"repro/internal/telf"
	"repro/internal/trusted"
)

// Adversarial tests: each one plays a §5 attack — a malicious task or
// compromised component trying to break isolation, availability or
// authenticity — and asserts TyTAN's promised outcome: the attack fails
// and nobody else is affected.

// spyTask tries to read a victim's memory at an address patched into
// its data section.
const spyTask = `
.task "spy"
.entry main
.stack 128
.bss 28
.text
main:
    ldi32 r1, target
    ld r1, [r1+0]     ; victim address
    ld r0, [r1+0]     ; the forbidden read
    ldi r1, 88        ; 'X' — only printed if the read succeeded
    svc 5
    svc 1
.data
target:
    .word 0
`

const victimTask = `
.task "victim"
.entry main
.stack 128
.bss 28
.text
main:
    ldi32 r1, secret
    ldi r0, 30000
    svc 2
    jmp main
.data
secret:
    .word 0x5EC12E7
`

// itoaBytes renders a name as .byte operands so each generated image
// has distinct *measured* content (the TELF name field is metadata and
// deliberately not part of the identity).
func itoaBytes(name string) string {
	out := ""
	for i, c := range []byte(name) {
		if i > 0 {
			out += ", "
		}
		out += itoa(int(c))
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func patchWord(im []byte, v uint32) {
	im[0] = byte(v)
	im[1] = byte(v >> 8)
	im[2] = byte(v >> 16)
	im[3] = byte(v >> 24)
}

func TestAttackSpyReadsSecureTask(t *testing.T) {
	p := newTyTAN(t)
	victim, _, err := p.LoadTaskSync(mustImage(t, victimTask), Secure, 4)
	if err != nil {
		t.Fatal(err)
	}
	spyIm := mustImage(t, spyTask)
	patchWord(spyIm.Data, victim.Placement.Base)
	spy, _, err := p.LoadTaskSync(spyIm, Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(10 * DefaultTickPeriod); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.Output(), "X") {
		t.Fatal("spy read the victim's memory")
	}
	if _, ok := p.K.Task(spy.ID); ok {
		t.Error("spy survived its violation")
	}
	if _, ok := p.K.Task(victim.ID); !ok {
		t.Error("victim was collateral damage")
	}
}

// jmpTask jumps into the middle of a victim task (code-reuse attempt).
const jmpTask = `
.task "rop"
.entry main
.stack 128
.bss 28
.text
main:
    ldi32 r1, target
    ld r1, [r1+0]
    jr r1             ; jump past the victim's entry point
    svc 1
.data
target:
    .word 0
`

func TestAttackCodeReuseMidRegionJump(t *testing.T) {
	p := newTyTAN(t)
	victim, _, err := p.LoadTaskSync(mustImage(t, victimTask), Secure, 4)
	if err != nil {
		t.Fatal(err)
	}
	ropIm := mustImage(t, jmpTask)
	patchWord(ropIm.Data, victim.EntryAddr+8) // mid-body gadget address
	rop, _, err := p.LoadTaskSync(ropIm, Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(10 * DefaultTickPeriod); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.K.Task(rop.ID); ok {
		t.Error("code-reuse task survived the entry violation")
	}
	if _, ok := p.K.Task(victim.ID); !ok {
		t.Error("victim killed by someone else's violation")
	}
}

// idtTask tries to install its own interrupt handler by writing the IDT.
const idtTask = `
.task "idt-writer"
.entry main
.stack 128
.bss 28
.text
main:
    ldi32 r1, 0x1000   ; IDT base
    ldi32 r2, 0x41414141
    st [r1+0], r2      ; overwrite vector 0
    ldi r1, 88
    svc 5
    svc 1
`

func TestAttackIDTOverwrite(t *testing.T) {
	p := newTyTAN(t)
	if _, _, err := p.LoadTaskSync(mustImage(t, idtTask), Secure, 3); err != nil {
		t.Fatal(err)
	}
	handlerBefore := p.M.IDTHandler(machine.IRQTimer)
	if err := p.Run(10 * DefaultTickPeriod); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.Output(), "X") {
		t.Fatal("task survived writing the IDT")
	}
	if got := p.M.IDTHandler(machine.IRQTimer); got != handlerBefore {
		t.Fatalf("IDT modified: %#x -> %#x", handlerBefore, got)
	}
}

// keyTask tries to read the platform key over MMIO.
const keyTask = `
.task "key-thief"
.entry main
.stack 128
.bss 28
.text
main:
    ldi32 r1, 0xF0000400   ; key store
    ld r0, [r1+0]
    ldi r1, 88
    svc 5
    svc 1
`

func TestAttackPlatformKeyRead(t *testing.T) {
	p := newTyTAN(t)
	if _, _, err := p.LoadTaskSync(mustImage(t, keyTask), Secure, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(10 * DefaultTickPeriod); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.Output(), "X") {
		t.Fatal("task read the platform key")
	}
}

// TestAttackForgedIPCSenderIdentity: a task cannot make the proxy lie
// about who sent a message — the proxy derives idS from the interrupt
// origin, not from anything the sender controls.
func TestAttackForgedIPCSenderIdentity(t *testing.T) {
	p := newTyTAN(t)
	mallory, malID, err := p.LoadTaskSync(GenTestImage(t, "mallory"), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	alice, aliceID, err := p.LoadTaskSync(GenTestImage(t, "alice"), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	bob, bobID, err := p.LoadTaskSync(GenTestImage(t, "bob"), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = alice
	_ = aliceID

	// Mallory sends to Bob. Whatever registers she fills, Bob's mailbox
	// carries Mallory's measured identity.
	status := p.C.Proxy.Send(p.K, mallory, bobID.TruncatedID(), []uint32{1}, 4, false)
	if status != trusted.IPCStatusOK {
		t.Fatalf("send = %d", status)
	}
	e, _ := p.C.RTM.LookupByTask(bob.ID)
	box, _ := trusted.MailboxAddr(e)
	var lo, hi uint32
	p.M.WithExecContext(bob.Placement.Base, func() {
		lo, _ = p.M.Read32(box + 4)
		hi, _ = p.M.Read32(box + 8)
	})
	got := uint64(lo) | uint64(hi)<<32
	if got != malID.TruncatedID() {
		t.Errorf("sender identity = %#x, want mallory's %#x", got, malID.TruncatedID())
	}
	if got == aliceID.TruncatedID() {
		t.Error("identity spoofed to alice")
	}
}

// TestAttackSlotExhaustionIsBounded: a provider loading tasks until the
// EA-MPU runs out of slots gets clean failures; already-loaded tasks
// keep running (availability, §5: tasks are "bound in their use of
// system resources").
func TestAttackSlotExhaustionIsBounded(t *testing.T) {
	p := newTyTAN(t)
	var loaded []rtos.TaskID
	var firstErr error
	for i := 0; i < 32; i++ {
		tcb, _, err := p.LoadTaskSync(GenTestImage(t, "flood"), Secure, 2)
		if err != nil {
			firstErr = err
			break
		}
		loaded = append(loaded, tcb.ID)
	}
	if firstErr == nil {
		t.Fatal("slot exhaustion never surfaced")
	}
	if !errors.Is(firstErr, ErrLoadFailed) {
		t.Errorf("exhaustion error = %v", firstErr)
	}
	if len(loaded) == 0 {
		t.Fatal("nothing loaded before exhaustion")
	}
	// Everything already loaded still exists and the platform still
	// schedules.
	for _, id := range loaded {
		if _, ok := p.K.Task(id); !ok {
			t.Errorf("task %d lost during exhaustion", id)
		}
	}
	if err := p.Run(5 * DefaultTickPeriod); err != nil {
		t.Fatal(err)
	}
	// Unloading one frees a slot; loading works again.
	if err := p.Unload(loaded[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.LoadTaskSync(GenTestImage(t, "again"), Secure, 2); err != nil {
		t.Errorf("load after unload failed: %v", err)
	}
}

// TestAttackSpinningTaskCannotStarve: a busy-looping task at one
// priority cannot starve an equal-priority peer (round robin) nor a
// higher-priority one (pre-emption) — the §5 availability argument.
func TestAttackSpinningTaskCannotStarve(t *testing.T) {
	p := newTyTAN(t)
	spin := mustImage(t, `
.task "hog"
.entry main
.stack 128
.bss 28
.text
main:
    jmp main
`)
	beat := mustImage(t, `
.task "beat"
.entry main
.stack 128
.bss 28
.text
main:
    ldi r1, 46   ; '.'
loop:
    svc 5
    ldi r0, 30000
    svc 2
    jmp loop
`)
	if _, _, err := p.LoadTaskSync(spin, Secure, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.LoadTaskSync(beat, Secure, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(40 * DefaultTickPeriod); err != nil {
		t.Fatal(err)
	}
	dots := strings.Count(p.Output(), ".")
	if dots < 35 {
		t.Errorf("high-priority heartbeat ran %d times in 40 periods; starved by the hog", dots)
	}
}

// TestAttackEAMPUDriverOverlap: a malicious load cannot claim a region
// overlapping an existing task (the Table 6 policy check).
func TestAttackEAMPUDriverOverlap(t *testing.T) {
	p := newTyTAN(t)
	victim, _, err := p.LoadTaskSync(GenTestImage(t, "v"), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	rule := eampu.Rule{
		Code:  eampu.Region{Start: 0x30_0000, Size: 0x100},
		Data:  victim.Placement.Region(),
		Perm:  eampu.PermRW,
		Owner: 999,
	}
	if _, err := p.C.Driver.Configure(rule); !errors.Is(err, eampu.ErrOverlap) {
		t.Errorf("overlapping claim = %v, want ErrOverlap", err)
	}
}

// GenTestImage builds a small distinct secure-task image (the name is
// baked into the TELF header, so each call yields a distinct identity).
func GenTestImage(t *testing.T, name string) *telf.Image {
	t.Helper()
	im := mustImage(t, `
.task "`+name+`"
.entry main
.stack 128
.bss 28
.text
main:
    ldi r0, 30000
    svc 2
    jmp main
.data
tag:
    .byte `+itoaBytes(name)+`
`)
	return im
}
