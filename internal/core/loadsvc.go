package core

import (
	"errors"
	"fmt"

	"repro/internal/loader"
	"repro/internal/machine"
	"repro/internal/rtos"
	"repro/internal/sha1"
	"repro/internal/sverify"
	"repro/internal/telf"
	"repro/internal/trace"
	"repro/internal/trusted"
)

// The loader service performs dynamic task loading as a background
// service task, in bounded micro-steps: §4's loading sequence
//
//	(1) allocate memory → (2) load + relocate → (3) prepare stack →
//	(4) configure EA-MPU → (5) measure → (6) notify the scheduler
//
// with every long phase (copy, relocation, measurement) interruptible.
// The paper's use case (§6, Table 1) depends on exactly this: loading
// t2 takes 27.8 ms, "longer than the time available between two
// scheduling cycles of t0 and t1", yet both keep their 1.5 kHz
// deadlines because loading can be pre-empted at any quantum boundary.

// loaderQuantum caps the work one Step performs, bounding the service's
// contribution to scheduling latency (about one SHA-1 block).
const loaderQuantum = 4_096

// LoadPhase identifies the current stage of an asynchronous load.
type LoadPhase int

// Load phases in execution order.
const (
	LoadPending  LoadPhase = iota // queued, not started
	LoadVerify                    // static verification (strict gate only)
	LoadAlloc                     // allocating memory
	LoadStream                    // copying, zeroing, relocating
	LoadInstall                   // stack preparation + TCB
	LoadProtect                   // EA-MPU configuration
	LoadMeasure                   // RTM measurement
	LoadSchedule                  // scheduler notification
	LoadDone
	LoadFailed
)

// String names the phase.
func (ph LoadPhase) String() string {
	switch ph {
	case LoadPending:
		return "pending"
	case LoadVerify:
		return "verify"
	case LoadAlloc:
		return "alloc"
	case LoadStream:
		return "stream"
	case LoadInstall:
		return "install"
	case LoadProtect:
		return "protect"
	case LoadMeasure:
		return "measure"
	case LoadSchedule:
		return "schedule"
	case LoadDone:
		return "done"
	case LoadFailed:
		return "failed"
	default:
		return fmt.Sprintf("phase(%d)", int(ph))
	}
}

// LoadBreakdown is the per-phase cycle accounting of one load — the
// columns of Table 4.
type LoadBreakdown struct {
	Verify   uint64 // static verification (zero unless the strict gate is armed)
	Alloc    uint64
	Copy     uint64 // streaming + BSS zeroing
	Reloc    uint64 // relocation fixups (Table 4 "Relocation")
	Install  uint64 // stack preparation + TCB + scheduler structures
	Protect  uint64 // EA-MPU configuration (Table 4 "EA-MPU")
	Measure  uint64 // RTM measurement (Table 4 "RTM")
	Schedule uint64 // final scheduler notification
}

// Total sums the phases — Table 4 "Overall".
func (b LoadBreakdown) Total() uint64 {
	return b.Verify + b.Alloc + b.Copy + b.Reloc + b.Install + b.Protect + b.Measure + b.Schedule
}

// LoadRequest tracks one (possibly in-flight) load.
type LoadRequest struct {
	im   *telf.Image
	kind rtos.TaskKind
	prio int

	phase    LoadPhase
	base     uint32
	job      *loader.Job
	mjob     *trusted.MeasureJob
	tcb      *rtos.TCB
	identity sha1.Digest
	report   *sverify.Report // verification report (strict gate only)
	err      error

	// StartCycle is when the loader began work; EndCycle when the task
	// became schedulable.
	StartCycle uint64
	EndCycle   uint64

	Breakdown LoadBreakdown
}

func newLoadRequest(im *telf.Image, kind rtos.TaskKind, prio int) *LoadRequest {
	return &LoadRequest{im: im, kind: kind, prio: prio, phase: LoadPending}
}

// Done reports whether the load finished (successfully or not).
func (r *LoadRequest) Done() bool { return r.phase == LoadDone || r.phase == LoadFailed }

// Err returns the failure, if any.
func (r *LoadRequest) Err() error { return r.err }

// Phase returns the current phase.
func (r *LoadRequest) Phase() LoadPhase { return r.phase }

// Task returns the loaded task after completion.
func (r *LoadRequest) Task() *rtos.TCB { return r.tcb }

// Identity returns the measured identity (secure tasks only).
func (r *LoadRequest) Identity() sha1.Digest { return r.identity }

// loaderService is the OS's background loading task.
type loaderService struct {
	p       *Platform
	queue   []*LoadRequest
	quantum uint64
}

func newLoaderService(p *Platform, quantum uint64) *loaderService {
	if quantum == 0 {
		quantum = loaderQuantum
	}
	return &loaderService{p: p, quantum: quantum}
}

// HasWork implements the kernel's wakeable probe.
func (s *loaderService) HasWork() bool { return len(s.queue) > 0 }

func (s *loaderService) enqueue(r *LoadRequest) { s.queue = append(s.queue, r) }

// atomicThreshold: a quantum at or above this makes the loader
// non-interruptible (it runs each load to completion in one dispatch,
// ignoring the scheduler) — the SMART/SPM-style ablation.
const atomicThreshold = 1 << 30

// Step implements rtos.Service: advance the front request by one
// bounded quantum.
func (s *loaderService) Step(k *rtos.Kernel, self *rtos.TCB, budget uint64) (uint64, rtos.NativeStatus) {
	if len(s.queue) == 0 {
		return 0, rtos.NativeIdle
	}
	req := s.queue[0]
	if s.quantum >= atomicThreshold {
		// Atomic loading: hold the CPU until the load completes, exactly
		// what a non-interruptible measurement forces. Cycles are charged
		// phase by phase so the request's timestamps stay truthful.
		for !req.Done() {
			k.M.Charge(s.advance(req, 1<<40))
		}
		s.queue = s.queue[1:]
		if len(s.queue) == 0 {
			return 0, rtos.NativeIdle
		}
		return 0, rtos.NativeReady
	}
	if budget > s.quantum {
		budget = s.quantum
	}
	used := s.advance(req, budget)
	if req.Done() {
		s.queue = s.queue[1:]
		if len(s.queue) == 0 {
			return used, rtos.NativeIdle
		}
	}
	return used, rtos.NativeReady
}

// runSync drives a request to completion outside the scheduler (the
// non-interruptible path used by LoadTaskSync and the creation
// benchmarks).
func (s *loaderService) runSync(req *LoadRequest) error {
	for !req.Done() {
		used := s.advance(req, 1<<30)
		s.p.M.Charge(used)
	}
	return req.err
}

// setPhase transitions a request and reports the new phase on the
// platform's observability sink. Terminal phases (done, failed) emit
// richer events from their transition sites instead.
func (s *loaderService) setPhase(req *LoadRequest, ph LoadPhase) {
	req.phase = ph
	if ph == LoadDone || ph == LoadFailed {
		return
	}
	if o := s.p.obs; o != nil {
		o.Emit(trace.Event{
			Cycle: s.p.M.Cycles(), Sub: trace.SubLoader,
			Kind: trace.KindLoadPhase, Subject: req.im.Name,
			Attrs: []trace.Attr{trace.Str("phase", ph.String())},
		})
	}
}

// fail transitions a request into LoadFailed, releasing whatever it
// holds. A partially-streamed job is aborted first — relocations
// reverted, the touched extent scrubbed — so the region goes back to the
// allocator with no remnants of the dead task's code.
func (s *loaderService) fail(req *LoadRequest, err error) uint64 {
	req.err = fmt.Errorf("%w: %w", ErrLoadFailed, err)
	failedIn := req.phase
	req.phase = LoadFailed
	if o := s.p.obs; o != nil {
		o.Emit(trace.Event{
			Cycle: s.p.M.Cycles(), Sub: trace.SubLoader,
			Kind: trace.KindLoadPhase, Subject: req.im.Name,
			Attrs: []trace.Attr{
				trace.Str("phase", "failed"),
				trace.Str("in", failedIn.String()),
				trace.Str("err", err.Error()),
			},
		})
	}
	var used uint64
	if req.job != nil && !req.job.Aborted() {
		// Best effort: if the teardown itself faults (the bus is the
		// thing that failed), the partial cost is still charged.
		cost, _ := req.job.Abort()
		used += cost
	}
	if req.tcb != nil {
		s.p.K.Unload(req.tcb.ID)
		req.tcb = nil
	} else if req.base != 0 {
		s.p.K.Alloc.Free(req.base)
	}
	return used
}

// advance performs at most budget cycles of work on req and returns the
// cycles the kernel must charge (phases that charge the machine
// directly — driver, kernel primitives — return deltas of zero and are
// recorded in the breakdown via the cycle counter instead).
func (s *loaderService) advance(req *LoadRequest, budget uint64) uint64 {
	p := s.p
	switch req.phase {
	case LoadPending:
		req.StartCycle = p.M.Cycles()
		if p.C != nil && p.C.Gate != nil {
			s.setPhase(req, LoadVerify)
		} else {
			s.setPhase(req, LoadAlloc)
		}
		return 0

	case LoadVerify:
		// The strict gate: refuse to allocate, measure or install an
		// image the static verifier proves broken. The verification
		// cost is charged whether the image passes or not.
		gate := p.C.Gate
		cost := gate.Cost(req.im)
		req.Breakdown.Verify += cost
		rep, err := gate.Check(req.im)
		if err != nil {
			if o := p.obs; o != nil {
				info, warn, errs := rep.Counts()
				attrs := []trace.Attr{
					trace.Num("errors", uint64(errs)),
					trace.Num("warnings", uint64(warn)),
					trace.Num("notes", uint64(info)),
				}
				var be *loader.BoundsError
				if errors.As(err, &be) {
					// Resource-bound refusal: the typed reason names
					// which admission rule failed.
					attrs = append(attrs, trace.Str("reason", be.Reason))
				} else if errFindings := rep.Errors(); len(errFindings) > 0 {
					attrs = append(attrs, trace.Str("first", errFindings[0].Code))
				}
				o.Emit(trace.Event{
					Cycle: p.M.Cycles(), Sub: trace.SubLoader,
					Kind: trace.KindVerifyDenied, Subject: req.im.Name,
					Attrs: attrs,
				})
			}
			return cost + s.fail(req, err)
		}
		req.report = rep
		s.setPhase(req, LoadAlloc)
		return cost

	case LoadAlloc:
		base, scanned, err := p.K.Alloc.Alloc(loader.PlacedSize(req.im))
		if err != nil {
			return s.fail(req, err)
		}
		req.base = base
		req.job = loader.NewJob(p.M, req.im, base)
		cost := machine.CostAllocBase + uint64(scanned)*machine.CostAllocPerRegion
		req.Breakdown.Alloc += cost
		s.setPhase(req, LoadStream)
		return cost

	case LoadStream:
		used, err := req.job.Step(budget)
		if err != nil {
			return s.fail(req, err)
		}
		if req.job.Done() {
			// The job accounts its own phases precisely.
			req.Breakdown.Copy = req.job.CopyCost() + req.job.ZeroCost()
			req.Breakdown.Reloc = req.job.RelocCost()
			s.setPhase(req, LoadInstall)
		}
		return used

	case LoadInstall:
		before := p.M.Cycles()
		tcb, err := p.K.InstallTaskSuspended(req.im.Name, req.kind, req.prio, req.job.Placement())
		if err != nil {
			return s.fail(req, err)
		}
		req.tcb = tcb
		req.Breakdown.Install += p.M.Cycles() - before
		if p.C != nil {
			s.setPhase(req, LoadProtect)
		} else {
			s.setPhase(req, LoadSchedule)
		}
		return 0

	case LoadProtect:
		before := p.M.Cycles()
		if _, err := p.C.Driver.ProtectTask(req.tcb); err != nil {
			return s.fail(req, err)
		}
		req.Breakdown.Protect += p.M.Cycles() - before
		if req.kind == rtos.KindSecure {
			req.mjob = p.C.RTM.NewMeasureJob(req.im, req.base, nil)
			s.setPhase(req, LoadMeasure)
		} else {
			s.setPhase(req, LoadSchedule)
		}
		return 0

	case LoadMeasure:
		used, err := req.mjob.Step(budget)
		if err != nil {
			return s.fail(req, err)
		}
		req.Breakdown.Measure += used
		if req.mjob.Done() {
			id, _ := req.mjob.Identity()
			req.identity = id
			entry := p.C.RTM.Register(req.tcb, req.im, req.job.Placement(), id)
			if req.report != nil {
				entry.Bounds = req.report.Bounds
			}
			s.setPhase(req, LoadSchedule)
		}
		return used

	case LoadSchedule:
		before := p.M.Cycles()
		if err := p.K.Resume(req.tcb.ID); err != nil {
			return s.fail(req, err)
		}
		req.Breakdown.Schedule += p.M.Cycles() - before
		req.EndCycle = p.M.Cycles()
		req.phase = LoadDone
		if o := p.obs; o != nil {
			// The terminal event carries the full Table 4 breakdown; the
			// profile exporter attributes load cycles to phases from it.
			b := req.Breakdown
			o.Emit(trace.Event{
				Cycle: req.EndCycle, Sub: trace.SubLoader,
				Kind: trace.KindLoadPhase, Subject: req.im.Name,
				Attrs: []trace.Attr{
					trace.Str("phase", "done"),
					trace.Num("verify", b.Verify),
					trace.Num("alloc", b.Alloc),
					trace.Num("copy", b.Copy),
					trace.Num("reloc", b.Reloc),
					trace.Num("install", b.Install),
					trace.Num("protect", b.Protect),
					trace.Num("measure", b.Measure),
					trace.Num("schedule", b.Schedule),
					trace.Num("total", b.Total()),
					trace.Num("latency", req.EndCycle-req.StartCycle),
				},
			})
		}
		return 0
	}
	return 0
}
