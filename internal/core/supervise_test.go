package core

import (
	"errors"
	"testing"

	"repro/internal/rtos"
	"repro/internal/trusted"
)

// crashySrc behaves for several delay periods, then writes into the
// trusted area — an EA-MPU violation that kills it. The benign window is
// long enough for the supervisor to adopt (and attest) each restarted
// incarnation before it crashes again; every incarnation crashes, so the
// task burns through its restart budget.
const crashySrc = `
.task "crashy"
.entry main
.stack 128
.bss 28
.text
main:
    ldi r3, 8
loop:
    ldi32 r0, 60000
    svc 2                 ; one benign period
    addi r3, -1
    cmpi r3, 0
    bne loop
    ldi32 r1, 0x6000      ; Int Mux base: trusted, never writable
    st [r1+0], r1         ; EA-MPU violation
    svc 1
`

// sleeperSrc sleeps effectively forever — the hang the watchdog exists
// to catch.
const sleeperSrc = `
.task "sleeper"
.entry main
.stack 128
.bss 28
.text
main:
    ldi32 r0, 900000000
    svc 2
    jmp main
`

// spinnerSrc burns CPU without ever yielding — the runaway the CPU
// quota exists to catch.
const spinnerSrc = `
.task "spinner"
.entry main
.stack 128
.bss 28
.text
main:
    jmp main
`

func supervisedPlatform(t *testing.T, pol trusted.SupervisorPolicy) *Platform {
	t.Helper()
	p := newTyTAN(t)
	if _, err := p.EnableSupervision(pol); err != nil {
		t.Fatal(err)
	}
	return p
}

// runUntil advances the platform in slices until cond holds (or the
// cycle bound is exhausted).
func runUntil(t *testing.T, p *Platform, bound uint64, cond func() bool) bool {
	t.Helper()
	for p.Cycles() < bound {
		if cond() {
			return true
		}
		if err := p.Run(20_000); err != nil {
			t.Fatal(err)
		}
	}
	return cond()
}

func countEvents(sup *trusted.Supervisor, what string) int {
	n := 0
	for _, e := range sup.Events() {
		if e.What == what {
			n++
		}
	}
	return n
}

// TestSupervisorRestartsAndReattests: a faulted task is restarted
// through the full loading sequence and the new incarnation carries a
// fresh, verifiable measurement.
func TestSupervisorRestartsAndReattests(t *testing.T) {
	p := supervisedPlatform(t, trusted.SupervisorPolicy{
		MaxRestarts:  2,
		RestartDelay: 10_000,
	})
	im := mustImage(t, crashySrc)
	tcb, identity, err := p.LoadTaskSync(im, Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Watch(tcb.ID); err != nil {
		t.Fatal(err)
	}
	origID := tcb.ID

	healthyAgain := func() bool {
		st, ok := p.Sup.Status("crashy")
		return ok && st.State == trusted.WatchHealthy && st.Restarts == 1 && st.TaskID != origID
	}
	if !runUntil(t, p, 5_000_000, healthyAgain) {
		st, _ := p.Sup.Status("crashy")
		t.Fatalf("no restarted incarnation; status %+v, events %+v", st, p.Sup.Events())
	}

	st, _ := p.Sup.Status("crashy")
	if st.LastExit.Cause != rtos.ExitFault {
		t.Errorf("recorded exit cause = %v, want fault", st.LastExit.Cause)
	}
	if st.LastExit.FaultAddr != 0x6000 {
		t.Errorf("fault addr = %#x, want 0x6000", st.LastExit.FaultAddr)
	}

	// The restarted incarnation re-attests: freshly measured, same
	// binary, same identity, valid MAC.
	q, err := p.Provider("").Quote(st.TaskID, 0xC0FFEE)
	if err != nil {
		t.Fatalf("quote of restarted task: %v", err)
	}
	if err := p.Provider("").Verifier().Verify(q, identity, 0xC0FFEE); err != nil {
		t.Fatalf("restarted task failed verification: %v", err)
	}
}

// TestSupervisorQuarantineAfterBudget: the restart budget exhausts and
// the identity is condemned — later loads of the same binary exist but
// cannot be attested.
func TestSupervisorQuarantineAfterBudget(t *testing.T) {
	p := supervisedPlatform(t, trusted.SupervisorPolicy{
		MaxRestarts:  2,
		RestartDelay: 10_000,
	})
	im := mustImage(t, crashySrc)
	tcb, identity, err := p.LoadTaskSync(im, Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Watch(tcb.ID); err != nil {
		t.Fatal(err)
	}

	quarantined := func() bool {
		st, ok := p.Sup.Status("crashy")
		return ok && st.State == trusted.WatchQuarantined
	}
	if !runUntil(t, p, 20_000_000, quarantined) {
		st, _ := p.Sup.Status("crashy")
		t.Fatalf("never quarantined; status %+v, events %+v", st, p.Sup.Events())
	}

	if got := countEvents(p.Sup, "restart"); got != 2 {
		t.Errorf("restarts = %d, want 2", got)
	}
	if got := countEvents(p.Sup, "fault"); got != 3 {
		t.Errorf("faults = %d, want 3 (original + 2 restarts)", got)
	}
	if !p.C.Attest.Quarantined(identity) {
		t.Fatal("identity not quarantined in Attest")
	}
	if p.C.Attest.LocalAttest(identity.TruncatedID()) {
		t.Error("quarantined identity passes local attestation")
	}

	// Even a manual reload of the same binary cannot be attested.
	tcb2, _, err := p.LoadTaskSync(mustImage(t, crashySrc), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Provider("").Quote(tcb2.ID, 7); !errors.Is(err, trusted.ErrQuarantined) {
		t.Errorf("quote of reloaded quarantined binary = %v, want ErrQuarantined", err)
	}
}

// TestWatchdogKillsHungTask: a task that stops making CPU progress is
// put down with a watchdog verdict and goes through the restart policy.
func TestWatchdogKillsHungTask(t *testing.T) {
	p := supervisedPlatform(t, trusted.SupervisorPolicy{
		MaxRestarts:  1,
		RestartDelay: 10_000,
		CheckPeriod:  2 * DefaultTickPeriod,
		HangTimeout:  2 * DefaultTickPeriod,
	})
	tcb, _, err := p.LoadTaskSync(mustImage(t, sleeperSrc), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Watch(tcb.ID); err != nil {
		t.Fatal(err)
	}

	quarantined := func() bool {
		st, ok := p.Sup.Status("sleeper")
		return ok && st.State == trusted.WatchQuarantined
	}
	if !runUntil(t, p, 20_000_000, quarantined) {
		st, _ := p.Sup.Status("sleeper")
		t.Fatalf("hung task never quarantined; status %+v, events %+v", st, p.Sup.Events())
	}
	if countEvents(p.Sup, "watchdog-hang") < 2 {
		t.Errorf("watchdog-hang events = %d, want ≥2", countEvents(p.Sup, "watchdog-hang"))
	}
	st, _ := p.Sup.Status("sleeper")
	if st.LastExit.Cause != rtos.ExitWatchdog {
		t.Errorf("last exit cause = %v, want watchdog", st.LastExit.Cause)
	}
}

// TestWatchdogKillsRunawayTask: a spinner blowing its CPU quota is
// killed at the next watchdog sweep.
func TestWatchdogKillsRunawayTask(t *testing.T) {
	p := supervisedPlatform(t, trusted.SupervisorPolicy{
		MaxRestarts:  1,
		RestartDelay: 10_000,
		CheckPeriod:  2 * DefaultTickPeriod,
		CPUQuota:     DefaultTickPeriod / 2,
	})
	tcb, _, err := p.LoadTaskSync(mustImage(t, spinnerSrc), Secure, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Watch(tcb.ID); err != nil {
		t.Fatal(err)
	}

	killed := func() bool { return countEvents(p.Sup, "watchdog-quota") >= 1 }
	if !runUntil(t, p, 10_000_000, killed) {
		t.Fatalf("runaway never killed; events %+v", p.Sup.Events())
	}
}

// TestVoluntaryExitEndsSupervision: a clean exit is not a fault; no
// restart happens.
func TestVoluntaryExitEndsSupervision(t *testing.T) {
	p := supervisedPlatform(t, trusted.SupervisorPolicy{RestartDelay: 10_000})
	tcb, _, err := p.LoadTaskSync(mustImage(t, helloSrc), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Watch(tcb.ID); err != nil {
		t.Fatal(err)
	}
	ended := func() bool {
		st, ok := p.Sup.Status("hello")
		return ok && st.State == trusted.WatchEnded
	}
	if !runUntil(t, p, 5_000_000, ended) {
		st, _ := p.Sup.Status("hello")
		t.Fatalf("supervision did not end; status %+v", st)
	}
	if countEvents(p.Sup, "restart") != 0 {
		t.Error("voluntary exit triggered a restart")
	}
	if p.Output() != "hi" {
		t.Errorf("output = %q", p.Output())
	}
}

// TestExitInfoQueryAPI: the kernel retains structured exit records for
// every removal path.
func TestExitInfoQueryAPI(t *testing.T) {
	p := newTyTAN(t)
	tcb, _, err := p.LoadTaskSync(mustImage(t, crashySrc), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(60 * DefaultTickPeriod); err != nil {
		t.Fatal(err)
	}
	rec, ok := p.K.ExitInfo(tcb.ID)
	if !ok {
		t.Fatal("no exit record for the faulted task")
	}
	if rec.Reason.Cause != rtos.ExitFault {
		t.Errorf("cause = %v, want fault", rec.Reason.Cause)
	}
	if rec.Reason.FaultAddr != 0x6000 {
		t.Errorf("fault addr = %#x, want 0x6000", rec.Reason.FaultAddr)
	}
	if rec.Reason.Cycle == 0 {
		t.Error("exit cycle not stamped")
	}
	if rec.Name != "crashy" {
		t.Errorf("name = %q", rec.Name)
	}
	if len(p.K.Exits()) == 0 {
		t.Error("Exits() empty")
	}

	// A clean exit records a non-fault cause.
	h, _, err := p.LoadTaskSync(mustImage(t, helloSrc), Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(20 * DefaultTickPeriod); err != nil {
		t.Fatal(err)
	}
	hrec, ok := p.K.ExitInfo(h.ID)
	if !ok {
		t.Fatal("no exit record for hello")
	}
	if hrec.Reason.Cause != rtos.ExitSelf {
		t.Errorf("hello cause = %v, want exit", hrec.Reason.Cause)
	}
	if hrec.Reason.Cause.IsFault() {
		t.Error("voluntary exit classified as fault")
	}
}
