// Package cfg holds the control-flow and abstract-interpretation
// building blocks shared by the static verifier (internal/sverify) and
// the superblock compiler (internal/machine). Both walk straight-line
// runs of decoded instructions and propagate a shallow register value
// lattice through them; keeping the lattice here lets the runtime
// compiler reuse the verifier's transfer semantics without the machine
// package importing the verifier (which itself imports the machine for
// its memory-map constants).
//
// The lattice is deliberately shallow: a register is Top (unknown), a
// constant (optionally tagged as an image-relative, relocated address),
// or an SP-relative offset. Joins of unequal values go straight to Top,
// which keeps fixpoints fast and all derived verdicts one-sided: a
// proven value means *provably* that value, Top means nothing.
package cfg

import "repro/internal/isa"

// Kind classifies an abstract value.
type Kind uint8

// Value kinds.
const (
	// Top is the unknown value (the lattice top). The zero Value is Top.
	Top Kind = iota
	// Const is a known 32-bit value; Reloc marks it image-relative.
	Const
	// Stack is an SP-relative offset: V holds the signed delta from the
	// initial stack pointer.
	Stack
)

// Value is one abstract register value.
type Value struct {
	K     Kind
	V     uint32
	Reloc bool
}

// TopValue returns the unknown value.
func TopValue() Value { return Value{} }

// ConstValue returns a known absolute constant.
func ConstValue(v uint32) Value { return Value{K: Const, V: v} }

// RelocValue returns a known image-relative constant (the loader adds
// the placement base).
func RelocValue(v uint32) Value { return Value{K: Const, V: v, Reloc: true} }

// StackValue returns an SP-relative offset.
func StackValue(delta int32) Value { return Value{K: Stack, V: uint32(delta)} }

// Delta returns the signed stack delta of a Stack value.
func (a Value) Delta() int32 { return int32(a.V) }

// IsConst reports whether the value is a known absolute (non-relocated)
// constant — the form the superblock compiler can hoist checks for.
func (a Value) IsConst() bool { return a.K == Const && !a.Reloc }

// Join is the lattice join: equal values survive, everything else goes
// to Top.
func Join(a, b Value) Value {
	if a == b {
		return a
	}
	return Value{}
}

// Add adds two abstract values. Adding a plain constant to a relocated
// address keeps the relocation provenance (pointer arithmetic within
// the image); adding two pointers is meaningless and degrades to Top.
func Add(a, b Value) Value {
	switch {
	case a.K == Stack && b.K == Const && !b.Reloc:
		return StackValue(a.Delta() + int32(b.V))
	case b.K == Stack && a.K == Const && !a.Reloc:
		return StackValue(b.Delta() + int32(a.V))
	case a.K == Const && b.K == Const:
		if a.Reloc && b.Reloc {
			return Value{}
		}
		return Value{K: Const, V: a.V + b.V, Reloc: a.Reloc || b.Reloc}
	}
	return Value{}
}

// Sub subtracts abstract values: pointer−constant stays a pointer,
// pointer−pointer is a plain distance, constant−pointer is opaque.
func Sub(a, b Value) Value {
	if a.K == Stack && b.K == Const && !b.Reloc {
		return StackValue(a.Delta() - int32(b.V))
	}
	if a.K != Const || b.K != Const {
		return Value{}
	}
	switch {
	case a.Reloc && b.Reloc:
		return ConstValue(a.V - b.V)
	case !a.Reloc && b.Reloc:
		return Value{}
	default:
		return Value{K: Const, V: a.V - b.V, Reloc: a.Reloc}
	}
}

// Bits applies a bitwise/multiplicative op: only meaningful on two
// plain constants (masking a pointer yields an unpredictable address).
func Bits(a, b Value, f func(a, b uint32) uint32) Value {
	if a.K == Const && !a.Reloc && b.K == Const && !b.Reloc {
		return ConstValue(f(a.V, b.V))
	}
	return Value{}
}

// Regs is the abstract register file at one program point.
type Regs [isa.NumRegs]Value

// Transfer applies the register effect of one instruction to regs.
// ldi32Reloc marks the LDI32 immediate as a relocated (image-relative)
// address; runtime consumers pass false — loaded code holds absolute
// values. Control transfers have no register effect here except RET's
// stack pop; CALL's callee-side SP adjustment is an edge effect the
// caller models (the verifier in its flow function, the superblock
// compiler not at all since CALL ends a block).
func Transfer(in isa.Instruction, regs *Regs, ldi32Reloc bool) {
	switch in.Op {
	case isa.OpMOV:
		regs[in.Rd] = regs[in.Rs]
	case isa.OpLDI:
		regs[in.Rd] = ConstValue(uint32(int32(in.Imm)))
	case isa.OpLUI:
		regs[in.Rd] = ConstValue(uint32(uint16(in.Imm)) << 16)
	case isa.OpLDI32:
		if ldi32Reloc {
			regs[in.Rd] = RelocValue(in.Imm32)
		} else {
			regs[in.Rd] = ConstValue(in.Imm32)
		}
	case isa.OpLD, isa.OpLDB:
		regs[in.Rd] = Value{}
	case isa.OpADD:
		regs[in.Rd] = Add(regs[in.Rd], regs[in.Rs])
	case isa.OpSUB:
		if in.Rd == in.Rs {
			regs[in.Rd] = ConstValue(0) // clr idiom
		} else {
			regs[in.Rd] = Sub(regs[in.Rd], regs[in.Rs])
		}
	case isa.OpADDI:
		regs[in.Rd] = Add(regs[in.Rd], ConstValue(uint32(int32(in.Imm))))
	case isa.OpXOR:
		if in.Rd == in.Rs {
			regs[in.Rd] = ConstValue(0) // clr idiom
		} else {
			regs[in.Rd] = Bits(regs[in.Rd], regs[in.Rs], func(a, b uint32) uint32 { return a ^ b })
		}
	case isa.OpAND:
		regs[in.Rd] = Bits(regs[in.Rd], regs[in.Rs], func(a, b uint32) uint32 { return a & b })
	case isa.OpOR:
		regs[in.Rd] = Bits(regs[in.Rd], regs[in.Rs], func(a, b uint32) uint32 { return a | b })
	case isa.OpSHL:
		regs[in.Rd] = Bits(regs[in.Rd], regs[in.Rs], func(a, b uint32) uint32 { return a << (b & 31) })
	case isa.OpSHR:
		regs[in.Rd] = Bits(regs[in.Rd], regs[in.Rs], func(a, b uint32) uint32 { return a >> (b & 31) })
	case isa.OpMUL:
		regs[in.Rd] = Bits(regs[in.Rd], regs[in.Rs], func(a, b uint32) uint32 { return a * b })
	case isa.OpPUSH:
		regs[isa.SP] = Add(regs[isa.SP], ConstValue(^uint32(3))) // -4
	case isa.OpPOP:
		regs[in.Rd] = Value{}
		regs[isa.SP] = Add(regs[isa.SP], ConstValue(4))
	case isa.OpRET:
		regs[isa.SP] = Add(regs[isa.SP], ConstValue(4))
	case isa.OpSVC:
		// Service results land in r0/r1 (gettime, IPC lengths).
		regs[isa.R0] = Value{}
		regs[isa.R1] = Value{}
	case isa.OpRDCYC:
		regs[in.Rd] = Value{}
	}
}

// Terminator reports whether op ends a basic block: every control
// transfer plus HLT.
func Terminator(op isa.Op) bool {
	switch op {
	case isa.OpJMP, isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE,
		isa.OpBLTU, isa.OpBGEU, isa.OpJR, isa.OpCALL, isa.OpCALLR,
		isa.OpRET, isa.OpHLT:
		return true
	}
	return false
}
