package cfg

import (
	"testing"

	"repro/internal/isa"
)

func TestJoin(t *testing.T) {
	c5 := ConstValue(5)
	if got := Join(c5, ConstValue(5)); got != c5 {
		t.Fatalf("join equal consts = %+v", got)
	}
	if got := Join(c5, ConstValue(6)); got.K != Top {
		t.Fatalf("join unequal consts = %+v", got)
	}
	if got := Join(c5, RelocValue(5)); got.K != Top {
		t.Fatalf("join const with reloc const = %+v", got)
	}
	if got := Join(StackValue(-4), StackValue(-4)); got.K != Stack || got.Delta() != -4 {
		t.Fatalf("join equal stack = %+v", got)
	}
	if got := Join(StackValue(-4), StackValue(0)); got.K != Top {
		t.Fatalf("join unequal stack = %+v", got)
	}
}

func TestAddSub(t *testing.T) {
	if got := Add(ConstValue(5), ConstValue(7)); !got.IsConst() || got.V != 12 {
		t.Fatalf("5+7 = %+v", got)
	}
	if got := Add(StackValue(-8), ConstValue(4)); got.K != Stack || got.Delta() != -4 {
		t.Fatalf("stack-8 + 4 = %+v", got)
	}
	// Pointer+pointer has no meaning: two relocated values don't sum to
	// an address.
	if got := Add(RelocValue(8), RelocValue(8)); got.K != Top {
		t.Fatalf("reloc+reloc = %+v", got)
	}
	// Pointer+offset keeps provenance.
	if got := Add(RelocValue(8), ConstValue(4)); got.K != Const || !got.Reloc || got.V != 12 {
		t.Fatalf("reloc+const = %+v", got)
	}
	// Pointer difference is a plain number.
	if got := Sub(RelocValue(12), RelocValue(4)); !got.IsConst() || got.V != 8 {
		t.Fatalf("reloc-reloc = %+v", got)
	}
	// Number minus pointer is meaningless.
	if got := Sub(ConstValue(12), RelocValue(4)); got.K != Top {
		t.Fatalf("const-reloc = %+v", got)
	}
}

func TestTransferCoreOps(t *testing.T) {
	var r Regs
	step := func(in isa.Instruction) { Transfer(in, &r, false) }

	step(isa.Instruction{Op: isa.OpLDI, Rd: isa.R0, Imm: 5})
	step(isa.Instruction{Op: isa.OpLDI, Rd: isa.R1, Imm: 3})
	step(isa.Instruction{Op: isa.OpADD, Rd: isa.R0, Rs: isa.R1})
	if v := r[isa.R0]; !v.IsConst() || v.V != 8 {
		t.Fatalf("r0 after add = %+v", v)
	}
	step(isa.Instruction{Op: isa.OpSHL, Rd: isa.R0, Rs: isa.R1})
	if v := r[isa.R0]; !v.IsConst() || v.V != 64 {
		t.Fatalf("r0 after shl = %+v", v)
	}
	// Clear idiom: xor rd, rd is const 0 even from Top.
	step(isa.Instruction{Op: isa.OpLD, Rd: isa.R2, Rs: isa.R0})
	if v := r[isa.R2]; v.K != Top {
		t.Fatalf("r2 after load = %+v", v)
	}
	step(isa.Instruction{Op: isa.OpXOR, Rd: isa.R2, Rs: isa.R2})
	if v := r[isa.R2]; !v.IsConst() || v.V != 0 {
		t.Fatalf("r2 after xor-clear = %+v", v)
	}

	// Stack discipline: push/pop move SP by known deltas.
	r[isa.SP] = StackValue(0)
	step(isa.Instruction{Op: isa.OpPUSH, Rs: isa.R0})
	if v := r[isa.SP]; v.K != Stack || v.Delta() != -4 {
		t.Fatalf("sp after push = %+v", v)
	}
	step(isa.Instruction{Op: isa.OpPOP, Rd: isa.R3})
	if v := r[isa.SP]; v.K != Stack || v.Delta() != 0 {
		t.Fatalf("sp after pop = %+v", v)
	}
	if v := r[isa.R3]; v.K != Top {
		t.Fatalf("popped r3 = %+v", v)
	}

	// SVC clobbers the ABI result registers only.
	r[isa.R4] = ConstValue(9)
	r[isa.R0] = ConstValue(1)
	step(isa.Instruction{Op: isa.OpSVC, Imm: 2})
	if r[isa.R0].K != Top || r[isa.R1].K != Top {
		t.Fatalf("svc left r0/r1 = %+v %+v", r[isa.R0], r[isa.R1])
	}
	if v := r[isa.R4]; !v.IsConst() || v.V != 9 {
		t.Fatalf("svc clobbered r4 = %+v", v)
	}
}

func TestTransferLDI32Reloc(t *testing.T) {
	var r Regs
	Transfer(isa.Instruction{Op: isa.OpLDI32, Rd: isa.R0, Imm32: 0x40}, &r, true)
	v := r[isa.R0]
	if v.K != Const || !v.Reloc || v.V != 0x40 {
		t.Fatalf("relocated ldi32 = %+v", v)
	}
	if v.IsConst() {
		t.Fatal("relocated value must not count as a hoistable constant")
	}
}

func TestTerminator(t *testing.T) {
	for _, op := range []isa.Op{isa.OpJMP, isa.OpBEQ, isa.OpJR, isa.OpCALL,
		isa.OpCALLR, isa.OpRET, isa.OpHLT} {
		if !Terminator(op) {
			t.Errorf("%v not a terminator", op)
		}
	}
	for _, op := range []isa.Op{isa.OpNOP, isa.OpADD, isa.OpSVC, isa.OpPUSH} {
		if Terminator(op) {
			t.Errorf("%v wrongly a terminator", op)
		}
	}
}
