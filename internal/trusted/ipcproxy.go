package trusted

import (
	"errors"
	"fmt"

	"repro/internal/eampu"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/rtos"
	"repro/internal/trace"
)

// IPCProxy implements TyTAN's secure inter-process communication (§3,
// §4): the sender loads the message and the receiver's identity into
// CPU registers and raises a software interrupt; the proxy derives the
// *sender's* identity from the interrupt origin (it cannot be forged),
// resolves the receiver's location through the RTM registry, and writes
// the message plus the authenticated sender identity into the
// receiver's mailbox. Because the EA-MPU lets only the proxy write to
// the receiver's memory, delivery implicitly authenticates both the
// message and its origin.
//
// # Register ABI (SVC 16 send / 17 send-sync)
//
//	r1,r2  receiver identity (truncated 64-bit idR: lo, hi)
//	r3     payload length in bytes (0..12)
//	r4..r6 payload words
//	→ r0   status (see IPCStatus*)
//
// # Mailbox layout (at the receiver's BSS base, 28 bytes)
//
//	word 0  flags: 0 empty, 1 message present
//	word 1  sender identity lo
//	word 2  sender identity hi
//	word 3  payload length in bytes
//	word 4..6 payload
//
// Large transfers use proxy-established shared memory windows
// (SVC 20), accessible only to the two communicating tasks.
type IPCProxy struct {
	m      *machine.Machine
	rtm    *RTM
	driver *Driver

	sends   uint64
	dropped uint64
	windows []*SharedWindow

	// Obs, when set, receives one KindIPC event per proxy operation
	// (send attempts with their delivery status, blocking receives).
	// Emission charges no cycles, preserving the zero-impact contract.
	Obs trace.Sink
}

// Mailbox layout constants.
const (
	MailboxWords   = 7
	MailboxSize    = MailboxWords * 4
	MaxPayloadLen  = 12 // three register-carried words
	mailboxFlagOff = 0
)

// IPC status codes returned in r0.
const (
	IPCStatusOK         = 0
	IPCStatusNoReceiver = 1
	IPCStatusFull       = 2
	IPCStatusBadLen     = 3
	IPCStatusNoMailbox  = 4
)

// Proxy errors (native API).
var (
	ErrNoMailbox  = errors.New("trusted: receiver has no mailbox (needs .bss >= 28)")
	ErrBadPayload = errors.New("trusted: payload exceeds register capacity")
)

// NewIPCProxy creates the proxy.
func NewIPCProxy(m *machine.Machine, rtm *RTM, driver *Driver) *IPCProxy {
	return &IPCProxy{m: m, rtm: rtm, driver: driver}
}

// Sends returns the number of successful deliveries.
func (p *IPCProxy) Sends() uint64 { return p.sends }

// MailboxAddr returns the mailbox address of a registered task; false
// if the task reserves no BSS space for one. The mailbox occupies the
// first MailboxSize bytes of the task's BSS.
func MailboxAddr(e *RegistryEntry) (uint32, bool) {
	return mailboxBase(e)
}

// mailboxBase returns the mailbox address of a registered task; false
// if the task reserves no BSS space for one.
func mailboxBase(e *RegistryEntry) (uint32, bool) {
	if e.Image.BSSSize < MailboxSize {
		return 0, false
	}
	return e.Placement.BSSBase(), true
}

// emitIPC sends one typed proxy event (nil sink: no-op, no attrs built
// by callers that guard themselves).
func (p *IPCProxy) emitIPC(subject string, attrs ...trace.Attr) {
	if p.Obs == nil {
		return
	}
	p.Obs.Emit(trace.Event{
		Cycle: p.m.Cycles(), Sub: trace.SubIPC,
		Kind: trace.KindIPC, Subject: subject, Attrs: attrs,
	})
}

// Send performs an asynchronous delivery on behalf of sender (resolved
// from the interrupt origin). payload is at most MaxPayloadLen bytes.
// The returned status is the r0 value of the ABI.
func (p *IPCProxy) Send(k *rtos.Kernel, sender *rtos.TCB, recvTrunc uint64, payload []uint32, length uint32, sync bool) int {
	status, recvName := p.deliver(k, sender, recvTrunc, payload, length, sync)
	if p.Obs != nil {
		attrs := []trace.Attr{
			trace.Str("dir", "send"),
			trace.Num("status", uint64(status)),
			trace.Num("len", uint64(length)),
		}
		if recvName != "" {
			attrs = append(attrs, trace.Str("to", recvName))
		}
		if sync {
			attrs = append(attrs, trace.Str("mode", "sync"))
		}
		p.emitIPC(sender.Name, attrs...)
	}
	return status
}

// deliver is Send's body; it returns the ABI status and the resolved
// receiver name (empty if resolution failed).
func (p *IPCProxy) deliver(k *rtos.Kernel, sender *rtos.TCB, recvTrunc uint64, payload []uint32, length uint32, sync bool) (int, string) {
	// (1) Obtain the origin of the interrupt → sender identity.
	p.m.Charge(machine.CostIPCOrigin)
	var senderLo, senderHi uint32
	if se, ok := p.rtm.LookupByTask(sender.ID); ok {
		senderLo = uint32(se.TruncID)
		senderHi = uint32(se.TruncID >> 32)
	}
	p.m.Charge(machine.CostIPCLookupBase + uint64(p.rtm.Entries())*machine.CostIPCLookupPerTask)
	// (2) Resolve the receiver through the RTM registry.
	recv, scanned, err := p.rtm.LookupByTruncID(recvTrunc)
	p.m.Charge(machine.CostIPCLookupBase + uint64(scanned)*machine.CostIPCLookupPerTask)
	if err != nil {
		return IPCStatusNoReceiver, ""
	}
	recvName := recv.Task.Name
	if length > MaxPayloadLen {
		return IPCStatusBadLen, recvName
	}
	box, ok := mailboxBase(recv)
	if !ok {
		return IPCStatusNoMailbox, recvName
	}

	// (3) Write m and idS into the receiver's memory — only possible
	// from the proxy's protection context.
	var werr error
	p.m.WithExecContext(IPCProxyBase, func() {
		flags, err := p.m.Read32(box + mailboxFlagOff)
		if err != nil {
			werr = err
			return
		}
		if flags != 0 {
			werr = errMailboxFull
			return
		}
		words := [MailboxWords]uint32{1, senderLo, senderHi, length}
		copy(words[4:], payload)
		for i, w := range words {
			if err := p.m.Write32(box+uint32(i*4), w); err != nil {
				werr = err
				return
			}
		}
	})
	p.m.Charge(uint64(len(payload))*machine.CostIPCCopyPerWord + machine.CostIPCWriteSender)
	if werr != nil {
		p.dropped++
		if werr == errMailboxFull {
			return IPCStatusFull, recvName
		}
		return IPCStatusNoReceiver, recvName
	}

	// (4) Dispatch: wake a blocked receiver; for synchronous sends the
	// proxy "branches to R", modeled as an immediate yield of the
	// sender so the scheduler runs the receiver next (priority
	// permitting).
	p.m.Charge(machine.CostIPCDispatch)
	if recv.Task.State == rtos.StateBlocked {
		k.Unblock(recv.Task, rtos.EntryMessage)
	} else {
		recv.Task.EntryInfo = rtos.EntryMessage
	}
	if sync {
		k.YieldCurrent()
	}
	p.sends++
	return IPCStatusOK, recvName
}

var errMailboxFull = errors.New("trusted: mailbox full")

// HandleSend services the send SVCs using the register ABI.
func (p *IPCProxy) HandleSend(k *rtos.Kernel, t *rtos.TCB, sync bool) {
	m := k.M
	trunc := uint64(m.Reg(isa.R1)) | uint64(m.Reg(isa.R2))<<32
	length := m.Reg(isa.R3)
	payload := []uint32{m.Reg(isa.R4), m.Reg(isa.R5), m.Reg(isa.R6)}
	nwords := (length + 3) / 4
	if nwords > 3 {
		m.SetReg(isa.R0, IPCStatusBadLen)
		return
	}
	status := p.Send(k, t, trunc, payload[:nwords], length, sync)
	if !sync || status != IPCStatusOK {
		m.SetReg(isa.R0, uint32(status))
		return
	}
	// Synchronous path: the sender yielded; its status lands in the
	// saved frame so it is visible after resume.
	p.pokeSavedReg(t, isa.R0, IPCStatusOK)
}

// pokeSavedReg updates a register slot in a parked task's saved frame.
func (p *IPCProxy) pokeSavedReg(t *rtos.TCB, r isa.Reg, v uint32) {
	p.m.WithExecContext(IPCProxyBase, func() {
		p.m.Write32(t.SavedSP+uint32(r)*4, v)
	})
}

// HandleRecv services the blocking-receive SVC: if the mailbox already
// holds a message, return immediately with r0 = EntryMessage; otherwise
// block until a delivery wakes the task.
func (p *IPCProxy) HandleRecv(k *rtos.Kernel, t *rtos.TCB) error {
	e, ok := p.rtm.LookupByTask(t.ID)
	if !ok {
		k.M.SetReg(isa.R0, IPCStatusNoReceiver)
		return nil
	}
	box, ok := mailboxBase(e)
	if !ok {
		k.M.SetReg(isa.R0, IPCStatusNoMailbox)
		return nil
	}
	var flags uint32
	p.m.WithExecContext(IPCProxyBase, func() {
		flags, _ = p.m.Read32(box + mailboxFlagOff)
	})
	if flags != 0 {
		if p.Obs != nil {
			p.emitIPC(t.Name, trace.Str("dir", "recv"), trace.Str("state", "ready"))
		}
		k.M.SetReg(isa.R0, rtos.EntryMessage)
		return nil
	}
	if p.Obs != nil {
		p.emitIPC(t.Name, trace.Str("dir", "recv"), trace.Str("state", "blocked"))
	}
	return k.BlockCurrent()
}

// TransferMailbox moves a pending (undelivered) message from one
// task's mailbox to another's — the hand-over step of a runtime task
// update. Both mailboxes are touched only from the proxy's protection
// context. A clean (empty) source mailbox transfers nothing.
func (p *IPCProxy) TransferMailbox(from, to *RegistryEntry) error {
	src, ok := mailboxBase(from)
	if !ok {
		return nil // no mailbox, nothing to carry over
	}
	dst, ok := mailboxBase(to)
	if !ok {
		return ErrNoMailbox
	}
	var terr error
	p.m.WithExecContext(IPCProxyBase, func() {
		flags, err := p.m.Read32(src + mailboxFlagOff)
		if err != nil {
			terr = err
			return
		}
		if flags == 0 {
			return
		}
		for i := uint32(0); i < MailboxWords; i++ {
			v, err := p.m.Read32(src + i*4)
			if err != nil {
				terr = err
				return
			}
			if err := p.m.Write32(dst+i*4, v); err != nil {
				terr = err
				return
			}
		}
		terr = p.m.Write32(src+mailboxFlagOff, 0)
	})
	p.m.Charge(MailboxWords*machine.CostIPCCopyPerWord + machine.CostIPCOrigin)
	return terr
}

// SharedWindow is a proxy-established shared memory region between two
// tasks ("to efficiently transfer large amount of data between tasks,
// the IPC proxy sets up shared memory that is accessible only to the
// communicating tasks", §3).
type SharedWindow struct {
	Region eampu.Region
	A, B   rtos.TaskID
}

// SetupSharedMemory allocates a window from the task pool and grants
// the two tasks — and nobody else — read/write access to it. The first
// rule *claims* the window (making it protected memory), so code
// outside the two tasks is denied; the second is a grant for the peer.
// The window is torn down when either endpoint unloads.
func (p *IPCProxy) SetupSharedMemory(k *rtos.Kernel, a, b *rtos.TCB, size uint32) (*SharedWindow, error) {
	ea, ok := p.rtm.LookupByTask(a.ID)
	if !ok {
		return nil, fmt.Errorf("trusted: shared memory: %w", ErrUnknownIdentity)
	}
	eb, ok := p.rtm.LookupByTask(b.ID)
	if !ok {
		return nil, fmt.Errorf("trusted: shared memory: %w", ErrUnknownIdentity)
	}
	base, scanned, err := k.Alloc.Alloc(size)
	if err != nil {
		return nil, err
	}
	p.m.Charge(machine.CostAllocBase + uint64(scanned)*machine.CostAllocPerRegion)
	win := eampu.Region{Start: base, Size: size}
	for i, e := range []*RegistryEntry{ea, eb} {
		rule := eampu.Rule{
			Code:      e.Placement.Region(),
			Data:      win,
			Perm:      eampu.PermRW,
			GrantOnly: i > 0, // the first rule claims the window
			Owner:     e.Task.MPUOwner,
		}
		if _, err := p.driver.Configure(rule); err != nil {
			k.Alloc.Free(base)
			return nil, err
		}
	}
	w := &SharedWindow{Region: win, A: a.ID, B: b.ID}
	p.windows = append(p.windows, w)
	return w, nil
}

// ReleaseWindowsFor tears down every shared window one of whose
// endpoints is t: the memory returns to the pool (the EA-MPU rules are
// owned by the tasks and cleared with them).
func (p *IPCProxy) ReleaseWindowsFor(k *rtos.Kernel, t *rtos.TCB) int {
	kept := p.windows[:0]
	released := 0
	for _, w := range p.windows {
		if w.A != t.ID && w.B != t.ID {
			kept = append(kept, w)
			continue
		}
		k.Alloc.Free(w.Region.Start)
		// Clear the *peer's* rule too: its grant must not survive into
		// whatever the pool hands this region to next.
		for _, owner := range []rtos.TaskID{w.A, w.B} {
			if owner == t.ID {
				continue // this task's rules are cleared by the driver hook
			}
			p.clearWindowRule(uint32(owner), w.Region)
		}
		released++
	}
	p.windows = kept
	return released
}

// clearWindowRule removes the rule an owner holds over exactly this
// window region.
func (p *IPCProxy) clearWindowRule(owner uint32, win eampu.Region) {
	for i := 0; i < eampu.NumSlots; i++ {
		r, used := p.m.MPU.Slot(i)
		if used && !r.Locked && r.Owner == owner && r.Data == win {
			p.m.MPU.Clear(i)
			p.m.Charge(machine.CostWriteRule)
		}
	}
}
