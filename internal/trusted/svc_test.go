package trusted

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/rtos"
)

// ISA-level tests of the trusted syscall ABI: small assembly programs
// exercise each SVC and report through the UART.

// uartOf returns the rig's UART.
func uartOf(t *testing.T, r *rig) *machine.UART {
	t.Helper()
	d, ok := r.m.Device(machine.PageUART)
	if !ok {
		t.Fatal("no uart")
	}
	return d.(*machine.UART)
}

func runRig(t *testing.T, r *rig, cycles uint64) {
	t.Helper()
	r.k.StartTick()
	if err := r.k.RunUntil(r.m.Cycles() + cycles); err != nil {
		t.Fatal(err)
	}
}

func TestSVCGetIDAndLocalAttest(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, `
.task "self"
.entry main
.stack 192
.bss 28
.text
main:
    svc 19            ; get own id -> r0 status, r1 lo, r2 hi
    cmpi r0, 0
    bne bad
    svc 20            ; local attest of (r1,r2) -> r0 = 1 if loaded
    cmpi r0, 1
    bne bad
    ldi r1, 89        ; 'Y'
    svc 5
    svc 1
bad:
    ldi r1, 78        ; 'N'
    svc 5
    svc 1
`)
	r.loadTask(t, im, rtos.KindSecure, 3)
	runRig(t, r, 500_000)
	if got := uartOf(t, r).String(); got != "Y" {
		t.Errorf("output = %q, want Y", got)
	}
}

func TestSVCSealStoreLoadRoundTrip(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, `
.task "sealer"
.entry main
.stack 192
.bss 28
.text
main:
    ldi r1, 3          ; slot
    ldi32 r2, 0xC0FFEE
    svc 21             ; seal store
    cmpi r0, 0
    bne bad
    ldi r1, 3
    svc 22             ; seal load -> r0 status, r2 word
    cmpi r0, 0
    bne bad
    ldi32 r3, 0xC0FFEE
    cmp r2, r3
    bne bad
    ldi r1, 89         ; 'Y'
    svc 5
    svc 1
bad:
    ldi r1, 78
    svc 5
    svc 1
`)
	r.loadTask(t, im, rtos.KindSecure, 3)
	runRig(t, r, 1_000_000)
	if got := uartOf(t, r).String(); got != "Y" {
		t.Errorf("output = %q, want Y", got)
	}
	if r.c.Storage.Slots() != 1 {
		t.Errorf("slots = %d", r.c.Storage.Slots())
	}
}

func TestSVCSealLoadEmptySlot(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, `
.task "empty"
.entry main
.stack 192
.bss 28
.text
main:
    ldi r1, 9
    svc 22             ; load empty slot
    cmpi r0, 2         ; SealStatusEmpty
    bne bad
    ldi r1, 89
    svc 5
    svc 1
bad:
    ldi r1, 78
    svc 5
    svc 1
`)
	r.loadTask(t, im, rtos.KindSecure, 3)
	runRig(t, r, 500_000)
	if got := uartOf(t, r).String(); got != "Y" {
		t.Errorf("output = %q", got)
	}
}

func TestSVCGetMailbox(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, `
.task "boxy"
.entry main
.stack 192
.bss 28
.text
main:
    svc 23             ; r0 = mailbox address
    cmpi r0, 0
    beq bad
    ld r2, [r0+0]      ; must be readable (own bss) and empty
    cmpi r2, 0
    bne bad
    ldi r1, 89
    svc 5
    svc 1
bad:
    ldi r1, 78
    svc 5
    svc 1
`)
	tcb := r.loadTask(t, im, rtos.KindSecure, 3)
	e, _ := r.c.RTM.LookupByTask(tcb.ID)
	wantBox, _ := MailboxAddr(e)
	runRig(t, r, 500_000)
	if got := uartOf(t, r).String(); got != "Y" {
		t.Errorf("output = %q", got)
	}
	if wantBox != e.Placement.BSSBase() {
		t.Errorf("mailbox at %#x, want bss base %#x", wantBox, e.Placement.BSSBase())
	}
}

func TestSVCGetMailboxUnmeasuredTask(t *testing.T) {
	// A normal (unmeasured) task is not in the registry: SVC 23 yields 0.
	r := newRig(t)
	im := mustImage(t, `
.task "unreg"
.entry main
.stack 192
.bss 28
.text
main:
    svc 23
    cmpi r0, 0
    beq good
    ldi r1, 78
    svc 5
    svc 1
good:
    ldi r1, 89
    svc 5
    svc 1
`)
	r.loadTask(t, im, rtos.KindNormal, 3)
	runRig(t, r, 500_000)
	if got := uartOf(t, r).String(); got != "Y" {
		t.Errorf("output = %q", got)
	}
}

func TestSVCSendBadLength(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, `
.task "badlen"
.entry main
.stack 192
.bss 28
.text
main:
    svc 19             ; own id into r1,r2 (send to self)
    ldi r3, 16         ; > MaxPayloadLen
    svc 16
    cmpi r0, 3         ; IPCStatusBadLen
    bne bad
    ldi r1, 89
    svc 5
    svc 1
bad:
    ldi r1, 78
    svc 5
    svc 1
`)
	r.loadTask(t, im, rtos.KindSecure, 3)
	runRig(t, r, 500_000)
	if got := uartOf(t, r).String(); got != "Y" {
		t.Errorf("output = %q", got)
	}
}

func TestSVCSendToUnknownIdentity(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, `
.task "lost"
.entry main
.stack 192
.bss 28
.text
main:
    ldi32 r1, 0xDEAD
    ldi r2, 0
    ldi r3, 4
    ldi r4, 1
    svc 16
    cmpi r0, 1         ; IPCStatusNoReceiver
    bne bad
    ldi r1, 89
    svc 5
    svc 1
bad:
    ldi r1, 78
    svc 5
    svc 1
`)
	r.loadTask(t, im, rtos.KindSecure, 3)
	runRig(t, r, 500_000)
	if got := uartOf(t, r).String(); got != "Y" {
		t.Errorf("output = %q", got)
	}
}

func TestTransferMailboxEmptySource(t *testing.T) {
	r := newRig(t)
	a := r.loadTask(t, mustImage(t, ".task \"ta\"\n.entry e\n.stack 128\n.bss 28\n.text\ne:\n jmp e\n"), rtos.KindSecure, 3)
	b := r.loadTask(t, mustImage(t, ".task \"tb\"\n.entry e\n.stack 128\n.bss 28\n.text\ne:\n nop\n jmp e\n"), rtos.KindSecure, 3)
	ea, _ := r.c.RTM.LookupByTask(a.ID)
	eb, _ := r.c.RTM.LookupByTask(b.ID)
	if err := r.c.Proxy.TransferMailbox(ea, eb); err != nil {
		t.Fatalf("empty transfer: %v", err)
	}
	// Destination stays empty.
	box, _ := MailboxAddr(eb)
	var flags uint32
	r.m.WithExecContext(IPCProxyBase, func() { flags, _ = r.m.Read32(box) })
	if flags != 0 {
		t.Error("empty transfer set destination flag")
	}
}

func TestMeasuredCounter(t *testing.T) {
	r := newRig(t)
	before := r.c.RTM.Measured()
	r.loadTask(t, mustImage(t, ".task \"mc\"\n.entry e\n.stack 128\n.bss 28\n.text\ne:\n jmp e\n"), rtos.KindSecure, 3)
	if r.c.RTM.Measured() != before+1 {
		t.Errorf("Measured() = %d, want %d", r.c.RTM.Measured(), before+1)
	}
}

func TestProviderQuotesDistinct(t *testing.T) {
	r := newRig(t)
	tcb := r.loadTask(t, mustImage(t, ".task \"pq\"\n.entry e\n.stack 128\n.bss 28\n.text\ne:\n jmp e\n"), rtos.KindSecure, 3)
	q1, err := r.c.Attest.QuoteTaskForProvider("p1", tcb.ID, 5)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := r.c.Attest.QuoteTaskForProvider("p2", tcb.ID, 5)
	if err != nil {
		t.Fatal(err)
	}
	if q1.MAC == q2.MAC {
		t.Error("provider keys not separated")
	}
	// Cached derivation returns the same key.
	q1b, _ := r.c.Attest.QuoteTaskForProvider("p1", tcb.ID, 5)
	if q1b.MAC != q1.MAC {
		t.Error("provider key cache inconsistent")
	}
	if _, err := r.c.Attest.QuoteTaskForProvider("p1", 999, 1); err == nil {
		t.Error("quoted unknown task")
	}
}

func TestIntMuxCounters(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, ".task \"cnt\"\n.entry e\n.stack 128\n.bss 28\n.text\ne:\n jmp e\n")
	r.loadTask(t, im, rtos.KindSecure, 3)
	runRig(t, r, 10*rtos.DefaultTickPeriod)
	if r.c.Mux.Saves() == 0 || r.c.Mux.Restores() == 0 {
		t.Errorf("mux counters: saves=%d restores=%d", r.c.Mux.Saves(), r.c.Mux.Restores())
	}
}
