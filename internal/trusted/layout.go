// Package trusted implements TyTAN's trusted software components — the
// pieces Figure 1 marks as "trusted software" and secure boot loads and
// isolates:
//
//   - the EA-MPU driver (dynamic configuration of protection rules),
//   - the Int Mux (secure context save/wipe/restore around interrupts),
//   - the IPC proxy (authenticated inter-task messages),
//   - the RTM task (interruptible measurement, identity registry),
//   - Remote Attest (MAC-based quotes under a key derived from Kp),
//   - Secure Storage (sealing bound to task identity),
//   - and secure boot itself.
//
// Each component owns a code region in the platform's trusted area; its
// native Go implementation runs with the machine's execution context set
// inside that region, so every memory touch is authorized by exactly the
// EA-MPU rules secure boot installed — no ambient authority.
package trusted

import (
	"repro/internal/eampu"
	"repro/internal/machine"
)

// Trusted-area layout. The regions live in low RAM, above the IDT; on
// the FPGA prototype these would be the flash-resident trusted images.
const (
	// OSBase..OSEnd is the untrusted kernel's code region. The OS is
	// *not* trusted (the owner O controls it); it gets a region so the
	// EA-MPU can distinguish OS code from task code.
	OSBase = 0x0000_2000
	OSEnd  = 0x0000_6000

	// Trusted component code regions, 1 KiB each.
	IntMuxBase   = 0x0000_6000
	IPCProxyBase = 0x0000_6400
	RTMBase      = 0x0000_6800
	AttestBase   = 0x0000_6C00
	StorageBase  = 0x0000_7000
	DriverBase   = 0x0000_7400
	BootBase     = 0x0000_7800
	ComponentLen = 0x400

	// TrustedEnd is the first address past the trusted area.
	TrustedEnd = 0x0000_7C00
)

// Owner tags for EA-MPU rules installed by the trusted components
// themselves (task rules use the task ID, which stays far below these).
const (
	OwnerBoot   = 0xFFFF_0000 + iota // secure-boot static rules
	OwnerIntMux                      // Int Mux grants
	OwnerProxy                       // IPC proxy grants + shared windows
	OwnerRTM                         // RTM grants
	OwnerCrypto                      // key-store access rule
)

// OSRegion returns the untrusted OS code region.
func OSRegion() eampu.Region { return eampu.Region{Start: OSBase, Size: OSEnd - OSBase} }

// ComponentRegion returns the code region of the trusted component based
// at base.
func ComponentRegion(base uint32) eampu.Region {
	return eampu.Region{Start: base, Size: ComponentLen}
}

// cryptoRegion is the contiguous span of the components allowed to read
// the platform key: RTM, Remote Attest and Secure Storage.
func cryptoRegion() eampu.Region {
	return eampu.Region{Start: RTMBase, Size: StorageBase + ComponentLen - RTMBase}
}

// keyStorePage is the MMIO region of the platform-key device.
func keyStorePage() eampu.Region {
	return eampu.Region{Start: machine.DeviceAddr(machine.PageKeyStore), Size: machine.MMIOWindow}
}

// idtRegion is the interrupt descriptor table's memory.
func idtRegion() eampu.Region {
	return eampu.Region{Start: machine.IDTBase, Size: machine.IDTSize}
}
