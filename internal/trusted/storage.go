package trusted

import (
	"errors"
	"fmt"

	"repro/internal/hcrypto"
	"repro/internal/machine"
	"repro/internal/rtos"
	"repro/internal/sha1"
)

// Storage is the secure storage task (§3 "Secure storage"): everything
// a task stores is encrypted-and-MACed under its task key
// Kt = HMAC(idt ‖ Kp). Because idt enters the key, data sealed by one
// task can only ever be unsealed by a task with the *same measured
// binary* — an update that changes a single byte of code changes idt
// and loses access, exactly the binding the paper describes.
//
// Tasks reach the storage task over secure IPC, which identifies the
// requester; the native API takes the requesting TCB and resolves its
// identity through the RTM registry for the same effect.
type Storage struct {
	m   *machine.Machine
	rtm *RTM
	kp  []byte

	// blobs is the backing store, modeling the device's flash: slot key
	// → sealed blob. Deliberately *not* indexed by task: any task may
	// ask for any slot, and the seal alone decides whether unsealing
	// succeeds.
	blobs  map[uint32][]byte
	nonces uint64
}

// Storage errors.
var (
	ErrNoSlot = errors.New("trusted: storage slot empty")
	// ErrSealDenied covers both tampered blobs and identity mismatches —
	// deliberately indistinguishable to the caller.
	ErrSealDenied = errors.New("trusted: unseal failed")
)

// NewStorage creates the secure storage component.
func NewStorage(m *machine.Machine, rtm *RTM) (*Storage, error) {
	kp, err := readPlatformKey(m, StorageBase)
	if err != nil {
		return nil, err
	}
	return &Storage{m: m, rtm: rtm, kp: kp, blobs: make(map[uint32][]byte)}, nil
}

// taskKey derives Kt for the requesting task.
func (s *Storage) taskKey(t *rtos.TCB) ([]byte, sha1.Digest, error) {
	e, ok := s.rtm.LookupByTask(t.ID)
	if !ok {
		return nil, sha1.Digest{}, ErrUnknownIdentity
	}
	s.m.Charge(machine.CostStorageKeyDerive)
	return hcrypto.TaskKey(s.kp, e.ID), e.ID, nil
}

// sealCost charges the per-block encrypt-and-MAC cost.
func (s *Storage) sealCost(n int) {
	blocks := uint64(n+sha1.BlockSize-1) / sha1.BlockSize
	if blocks == 0 {
		blocks = 1
	}
	s.m.Charge(machine.CostStorageLookup + blocks*machine.CostStoragePerBlock)
}

// Store seals data under the requesting task's key into slot.
func (s *Storage) Store(t *rtos.TCB, slot uint32, data []byte) error {
	kt, _, err := s.taskKey(t)
	if err != nil {
		return err
	}
	s.sealCost(len(data))
	s.nonces++
	s.blobs[slot] = hcrypto.Seal(kt, s.nonces, data)
	return nil
}

// Load unseals slot for the requesting task. A task whose identity
// differs from the sealer's — or a blob tampered with at rest — yields
// ErrSealDenied.
func (s *Storage) Load(t *rtos.TCB, slot uint32) ([]byte, error) {
	kt, _, err := s.taskKey(t)
	if err != nil {
		return nil, err
	}
	blob, ok := s.blobs[slot]
	if !ok {
		return nil, fmt.Errorf("%w: slot %d", ErrNoSlot, slot)
	}
	s.sealCost(len(blob))
	pt, err := hcrypto.Unseal(kt, blob)
	if err != nil {
		return nil, ErrSealDenied
	}
	return pt, nil
}

// Migrate re-seals a slot from one loaded task's identity to
// another's: unseal under the source task's key, seal under the
// destination task's key. This is the owner-authorized escape hatch a
// runtime task *update* needs — by construction the updated binary has
// a new identity and could never unseal the old data itself. Both
// tasks must be loaded (and therefore measured) when migration runs.
func (s *Storage) Migrate(from, to *rtos.TCB, slot uint32) error {
	pt, err := s.Load(from, slot)
	if err != nil {
		return err
	}
	return s.Store(to, slot, pt)
}

// Slots returns the number of occupied slots.
func (s *Storage) Slots() int { return len(s.blobs) }

// TamperSlot flips a bit in a stored blob — fault-injection hook for
// tests and the security demo; returns false if the slot is empty.
func (s *Storage) TamperSlot(slot uint32) bool {
	b, ok := s.blobs[slot]
	if !ok || len(b) == 0 {
		return false
	}
	b[len(b)/2] ^= 0x01
	return true
}
