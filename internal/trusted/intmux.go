package trusted

import (
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/rtos"
)

// IntMux is the trusted interrupt multiplexer. When a task is
// interrupted, the hardware exception engine saves EIP and EFLAGS; the
// Int Mux then (1) stores the remaining context to the task's own
// stack, (2) wipes the CPU registers so the untrusted handler learns
// nothing about the task's state, and (3) branches to the handler
// selected by the EA-MPU-protected IDT — the three columns of Table 2.
//
// Resuming runs the inverse path through the task's entry routine: a
// branch to the entry point (where the EA-MPU entry check fires), the
// restart-vs-message dispatch on the info register, and the context
// restore — Table 3.
//
// The Int Mux implements rtos.InterruptPath, replacing the baseline
// handler when the platform boots in the TyTAN configuration.
type IntMux struct {
	m *machine.Machine
	// stats for the evaluation harness
	saves    uint64
	restores uint64
}

// NewIntMux creates the multiplexer.
func NewIntMux(m *machine.Machine) *IntMux { return &IntMux{m: m} }

// Saves returns how many secure context saves have been performed.
func (x *IntMux) Saves() uint64 { return x.saves }

// Restores returns how many secure context restores have been performed.
func (x *IntMux) Restores() uint64 { return x.restores }

// Save implements rtos.InterruptPath. All memory traffic happens inside
// the Int Mux's protection context: its boot-time grant covers task
// stacks, while the untrusted handler that runs afterwards sees only
// wiped registers.
func (x *IntMux) Save(k *rtos.Kernel, t *rtos.TCB) error {
	x.saves++
	var err error
	x.m.WithExecContext(IntMuxBase, func() {
		err = rtos.SaveFrame(k, t)
	})
	if err != nil {
		return err
	}
	x.m.Charge(machine.CostStoreContext)
	x.m.WipeRegisters()
	x.m.Charge(machine.CostWipeRegisters)
	// Branch to the handler from the protected IDT. The handler address
	// is read by hardware; the branch cost covers the dispatch.
	x.m.Charge(machine.CostSecureBranch)
	return nil
}

// Restore implements rtos.InterruptPath: branch into the task's entry
// routine, deliver the restart/message indication in R0, and restore
// the banked context.
func (x *IntMux) Restore(k *rtos.Kernel, t *rtos.TCB) error {
	x.restores++
	// Branch to the dedicated entry point; the EA-MPU entry-point check
	// is part of this edge.
	if t.Kind == rtos.KindSecure {
		if err := x.m.CheckExecEntry(IntMuxBase, t.EntryAddr); err != nil {
			return err
		}
	}
	x.m.Charge(machine.CostRestoreBranch)
	// Entry-routine dispatch: the task checks R0 to see why it was
	// entered (§4 "(Re)starting secure tasks").
	x.m.Charge(machine.CostEntryDispatch)
	info := t.EntryInfo
	if info == rtos.EntryMessage {
		// Receiver-side message processing by the entry routine (§6:
		// 116 cycles).
		x.m.Charge(machine.CostIPCEntryRoutine)
	}
	var err error
	x.m.WithExecContext(IntMuxBase, func() {
		err = rtos.RestoreFrame(k, t)
	})
	if err != nil {
		return err
	}
	x.m.Charge(machine.CostRestoreContext)
	if info == rtos.EntryMessage {
		// The entry routine reports the delivery in R0 — this is the
		// return value of the receiver's receive call. A plain resume
		// keeps the R0 from the restored frame.
		x.m.SetReg(isa.R0, info)
	}
	t.EntryInfo = rtos.EntryResumed
	return nil
}
