package trusted

import (
	"encoding/binary"
	"fmt"

	"repro/internal/eampu"
	"repro/internal/isa"
	"repro/internal/loader"
	"repro/internal/machine"
	"repro/internal/rtos"
	"repro/internal/sha1"
)

// Components bundles the booted trusted software. It implements the
// kernel's SyscallHandler and TaskHooks, wiring the trusted services
// into the OS without the OS being able to bypass them.
type Components struct {
	Mux     *IntMux
	Driver  *Driver
	RTM     *RTM
	Proxy   *IPCProxy
	Attest  *Attest
	Storage *Storage

	// Gate is the static pre-load verification gate; nil (off) until
	// EnableVerifyGate arms it.
	Gate *loader.Gate

	// BootReport is the secure-boot measurement chain over the trusted
	// components — the static root the dynamic measurements extend.
	BootReport sha1.Digest
}

// Trusted-layer SVC numbers (>= rtos.SVCUserBase).
const (
	SVCIPCSend     = rtos.SVCUserBase + 0 // 16: async send
	SVCIPCSendSync = rtos.SVCUserBase + 1 // 17: synchronous send
	SVCIPCRecv     = rtos.SVCUserBase + 2 // 18: blocking receive
	SVCGetID       = rtos.SVCUserBase + 3 // 19: own identity → r1 (lo), r2 (hi)
	SVCAttestLocal = rtos.SVCUserBase + 4 // 20: r1,r2 = id → r0 = loaded?
	SVCSealStore   = rtos.SVCUserBase + 5 // 21: r1 = slot, r2 = word → r0 status
	SVCSealLoad    = rtos.SVCUserBase + 6 // 22: r1 = slot → r0 status, r2 = word
	SVCGetMailbox  = rtos.SVCUserBase + 7 // 23: own mailbox address → r0 (0 if none)
	SVCShareMem    = rtos.SVCUserBase + 8 // 24: r1,r2 = peer id, r3 = size → r0 status, r1 window addr
)

// Seal syscall status codes.
const (
	SealStatusOK     = 0
	SealStatusDenied = 1
	SealStatusEmpty  = 2
)

// BootConfig parameterizes secure boot.
type BootConfig struct {
	// Provider is the attestation-key derivation context.
	Provider string
}

// Boot performs TyTAN's secure boot on an already-created kernel:
// instantiate the trusted components, measure them into the boot
// report, install the static (locked) EA-MPU rules, point the IDT at
// the Int Mux, enable the EA-MPU, and hook the components into the
// kernel. After Boot returns, the platform is in the state Figure 1
// depicts.
func Boot(k *rtos.Kernel, cfg BootConfig) (*Components, error) {
	m := k.M
	if m.MPU.Enabled() {
		return nil, fmt.Errorf("trusted: boot on an already-protected machine")
	}

	driver := NewDriver(m)
	rtm := NewRTM(m)

	// Static rules first (they are checked by nothing yet — the unit is
	// disabled until the end of boot, mirroring hardware reset state).
	allRAM := eampu.Region{Start: machine.RAMBase, Size: m.RAMSize()}
	trustedArea := eampu.Region{Start: IntMuxBase, Size: TrustedEnd - IntMuxBase}
	static := []eampu.Rule{
		// The IDT: readable by everyone, writable by no one. "The
		// integrity of the IDT is protected by the EA-MPU" (§4).
		{Data: idtRegion(), Perm: eampu.PermR, Locked: true, Owner: OwnerBoot},
		// The untrusted OS's own code region.
		{Code: OSRegion(), Data: OSRegion(), Perm: eampu.PermRX, Locked: true, Owner: OwnerBoot},
		// The trusted area: only trusted code executes there.
		{Code: trustedArea, Data: trustedArea, Perm: eampu.PermRX, Locked: true, Owner: OwnerBoot},
		// Int Mux: saves/restores contexts on any task stack.
		{Code: ComponentRegion(IntMuxBase), Data: allRAM, Perm: eampu.PermRW, GrantOnly: true, Locked: true, Owner: OwnerIntMux},
		// IPC proxy: the only component allowed to write into receiver
		// mailboxes.
		{Code: ComponentRegion(IPCProxyBase), Data: allRAM, Perm: eampu.PermRW, GrantOnly: true, Locked: true, Owner: OwnerProxy},
		// RTM: reads any task memory for measurement.
		{Code: ComponentRegion(RTMBase), Data: allRAM, Perm: eampu.PermR, GrantOnly: true, Locked: true, Owner: OwnerRTM},
		// Platform key: readable only by RTM / Remote Attest / Secure
		// Storage ("Access to this key is controlled by the EA-MPU and
		// only trusted software components have access to it", §3).
		{Code: cryptoRegion(), Data: keyStorePage(), Perm: eampu.PermR, Locked: true, Owner: OwnerCrypto},
	}
	for i, r := range static {
		m.Charge(machine.CostWriteRule)
		if err := m.MPU.Install(i, r); err != nil {
			return nil, fmt.Errorf("trusted: boot rule %d: %w", i, err)
		}
	}

	// Measure the trusted components into the boot report (secure boot
	// loads them and verifies integrity before anything else runs).
	report := measureBootChain(m)

	// The IDT routes every vector through the Int Mux.
	for v := 0; v < machine.IDTEntries; v++ {
		if err := m.SetIDTHandler(v, IntMuxBase); err != nil {
			return nil, err
		}
	}

	// Enforcement on.
	m.MPU.Enable()

	// Key-holding components derive their keys through the (now
	// enforced) EA-MPU path.
	attest, err := NewAttest(m, rtm, cfg.Provider)
	if err != nil {
		return nil, err
	}
	storage, err := NewStorage(m, rtm)
	if err != nil {
		return nil, err
	}

	c := &Components{
		Mux:        NewIntMux(m),
		Driver:     driver,
		RTM:        rtm,
		Proxy:      NewIPCProxy(m, rtm, driver),
		Attest:     attest,
		Storage:    storage,
		BootReport: report,
	}
	k.IntPath = c.Mux
	k.Syscalls = c
	k.Hooks = c
	return c, nil
}

// measureBootChain hashes the trusted component descriptors in load
// order, charging the measurement cost of each component's region. On
// the FPGA prototype this hashes the flash images; the simulator's
// components are native, so the descriptor (name, base, length) stands
// in for the bytes while the *cost* model still reflects hashing
// ComponentLen bytes per component.
func measureBootChain(m *machine.Machine) sha1.Digest {
	s := sha1.New()
	for _, comp := range []struct {
		name string
		base uint32
	}{
		{"eampu-driver", DriverBase},
		{"int-mux", IntMuxBase},
		{"ipc-proxy", IPCProxyBase},
		{"rtm", RTMBase},
		{"remote-attest", AttestBase},
		{"secure-storage", StorageBase},
	} {
		var desc [12]byte
		copy(desc[:], comp.name)
		binary.LittleEndian.PutUint32(desc[8:], comp.base)
		s.Write(desc[:])
		blocks := uint64(ComponentLen / sha1.BlockSize)
		m.Charge(machine.CostMeasureInit + blocks*machine.CostMeasurePerBlock)
	}
	return s.Sum()
}

// TaskExiting implements rtos.TaskHooks: tear down the task's EA-MPU
// rules and registry entry when it unloads.
func (c *Components) TaskExiting(k *rtos.Kernel, t *rtos.TCB) {
	c.Proxy.ReleaseWindowsFor(k, t)
	c.Driver.ReleaseTask(t)
	c.RTM.Unregister(t)
}

// HandleSyscall implements rtos.SyscallHandler for the trusted SVCs.
func (c *Components) HandleSyscall(k *rtos.Kernel, t *rtos.TCB, svc uint16) bool {
	m := k.M
	switch svc {
	case SVCIPCSend:
		c.Proxy.HandleSend(k, t, false)
	case SVCIPCSendSync:
		c.Proxy.HandleSend(k, t, true)
	case SVCIPCRecv:
		if err := c.Proxy.HandleRecv(k, t); err != nil {
			return false
		}
	case SVCGetID:
		if e, ok := c.RTM.LookupByTask(t.ID); ok {
			m.SetReg(isa.R0, IPCStatusOK)
			m.SetReg(isa.R1, uint32(e.TruncID))
			m.SetReg(isa.R2, uint32(e.TruncID>>32))
		} else {
			m.SetReg(isa.R0, IPCStatusNoReceiver)
		}
		m.Charge(machine.CostIPCLookupBase)
	case SVCAttestLocal:
		trunc := uint64(m.Reg(isa.R1)) | uint64(m.Reg(isa.R2))<<32
		if c.Attest.LocalAttest(trunc) {
			m.SetReg(isa.R0, 1)
		} else {
			m.SetReg(isa.R0, 0)
		}
	case SVCShareMem:
		trunc := uint64(m.Reg(isa.R1)) | uint64(m.Reg(isa.R2))<<32
		size := m.Reg(isa.R3)
		peer, _, err := c.RTM.LookupByTruncID(trunc)
		if err != nil {
			m.SetReg(isa.R0, IPCStatusNoReceiver)
			break
		}
		win, werr := c.Proxy.SetupSharedMemory(k, t, peer.Task, size)
		if werr != nil {
			m.SetReg(isa.R0, IPCStatusFull)
			break
		}
		m.SetReg(isa.R0, IPCStatusOK)
		m.SetReg(isa.R1, win.Region.Start)
	case SVCSealStore:
		var word [4]byte
		binary.LittleEndian.PutUint32(word[:], m.Reg(isa.R2))
		if err := c.Storage.Store(t, m.Reg(isa.R1), word[:]); err != nil {
			m.SetReg(isa.R0, SealStatusDenied)
		} else {
			m.SetReg(isa.R0, SealStatusOK)
		}
	case SVCGetMailbox:
		if e, ok := c.RTM.LookupByTask(t.ID); ok {
			if box, ok := MailboxAddr(e); ok {
				m.SetReg(isa.R0, box)
			} else {
				m.SetReg(isa.R0, 0)
			}
		} else {
			m.SetReg(isa.R0, 0)
		}
		m.Charge(machine.CostIPCLookupBase)
	case SVCSealLoad:
		data, err := c.Storage.Load(t, m.Reg(isa.R1))
		switch {
		case err == nil && len(data) >= 4:
			m.SetReg(isa.R0, SealStatusOK)
			m.SetReg(isa.R2, binary.LittleEndian.Uint32(data))
		case err == ErrSealDenied:
			m.SetReg(isa.R0, SealStatusDenied)
		default:
			m.SetReg(isa.R0, SealStatusEmpty)
		}
	default:
		return false
	}
	return true
}
