package trusted

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/eampu"
	"repro/internal/loader"
	"repro/internal/machine"
	"repro/internal/rtos"
	"repro/internal/sha1"
	"repro/internal/telf"
)

var testKey = []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20}

// rig is a booted TyTAN platform for tests.
type rig struct {
	m *machine.Machine
	k *rtos.Kernel
	c *Components
}

func newRig(t *testing.T) *rig {
	t.Helper()
	m := machine.New(4 << 20)
	m.MapDevice(machine.PageUART, machine.NewUART())
	m.MapDevice(machine.PageKeyStore, machine.NewKeyStore(testKey))
	k, err := rtos.NewKernel(m, rtos.Config{TyTAN: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Boot(k, BootConfig{Provider: "test-provider"})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{m: m, k: k, c: c}
}

func mustImage(t *testing.T, src string) *telf.Image {
	t.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// loadTask performs the full TyTAN loading sequence of §4 by hand:
// allocate, load+relocate, prepare stack, configure EA-MPU, measure,
// schedule.
func (r *rig) loadTask(t *testing.T, im *telf.Image, kind rtos.TaskKind, prio int) *rtos.TCB {
	t.Helper()
	base, scanned, err := r.k.Alloc.Alloc(loader.PlacedSize(im))
	if err != nil {
		t.Fatal(err)
	}
	r.m.Charge(machine.CostAllocBase + uint64(scanned)*machine.CostAllocPerRegion)
	job := loader.NewJob(r.m, im, base)
	cost, err := job.Run()
	r.m.Charge(cost)
	if err != nil {
		t.Fatal(err)
	}
	tcb, err := r.k.InstallTask(im.Name, kind, prio, job.Placement())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.c.Driver.ProtectTask(tcb); err != nil {
		t.Fatal(err)
	}
	if kind == rtos.KindSecure {
		mj := r.c.RTM.NewMeasureJob(im, base, nil)
		if _, err := mj.Run(); err != nil {
			t.Fatal(err)
		}
		id, err := mj.Identity()
		if err != nil {
			t.Fatal(err)
		}
		r.c.RTM.Register(tcb, im, job.Placement(), id)
	}
	return tcb
}

func TestBootStaticRules(t *testing.T) {
	r := newRig(t)
	if !r.m.MPU.Enabled() {
		t.Fatal("MPU not enabled after boot")
	}
	if r.m.MPU.UsedSlots() != 7 {
		t.Errorf("used slots = %d, want 7 static rules", r.m.MPU.UsedSlots())
	}
	// Boot report is deterministic.
	r2 := newRig(t)
	if r.c.BootReport != r2.c.BootReport {
		t.Error("boot report not deterministic")
	}
	// Locked rules cannot be cleared.
	if err := r.m.MPU.Clear(0); err != eampu.ErrSlotLocked {
		t.Errorf("clearing locked boot rule: %v", err)
	}
}

func TestIDTProtectedFromSoftware(t *testing.T) {
	r := newRig(t)
	// Software (any context) writing the IDT must fault.
	err := r.m.Write32(machine.IDTBase, 0xBAD)
	var v *eampu.Violation
	if !errors.As(err, &v) {
		t.Fatalf("IDT write = %v, want violation", err)
	}
	// Reads are fine (vectoring).
	if _, err := r.m.Read32(machine.IDTBase); err != nil {
		t.Errorf("IDT read: %v", err)
	}
	// Every vector points at the Int Mux.
	if h := r.m.IDTHandler(machine.IRQTimer); h != IntMuxBase {
		t.Errorf("timer vector = %#x", h)
	}
}

func TestKeyStoreAccessControl(t *testing.T) {
	r := newRig(t)
	base := machine.DeviceAddr(machine.PageKeyStore)
	// OS context: denied.
	var osErr error
	r.m.WithExecContext(OSBase, func() { _, osErr = r.m.Read32(base) })
	if osErr == nil {
		t.Error("OS read the platform key")
	}
	// Attest context: allowed.
	key, err := readPlatformKey(r.m, AttestBase)
	if err != nil {
		t.Fatalf("attest key read: %v", err)
	}
	if string(key) != string(testKey) {
		t.Error("key mismatch")
	}
	// Int Mux context (trusted but not crypto-capable): denied.
	var muxErr error
	r.m.WithExecContext(IntMuxBase, func() { _, muxErr = r.m.Read32(base) })
	if muxErr == nil {
		t.Error("Int Mux read the platform key")
	}
}

func TestDriverConfigureCostStructure(t *testing.T) {
	r := newRig(t)
	// Boot used slots 0..6, so the first free slot is position 8
	// (1-indexed). Cost must be 57 + 19*8 + 824 + 225.
	rule := eampu.Rule{Data: eampu.Region{Start: 0x20_0000, Size: 0x100}, Perm: eampu.PermRW, Owner: 42}
	cost, err := r.c.Driver.Configure(rule)
	if err != nil {
		t.Fatal(err)
	}
	wantFind := uint64(machine.CostSlotScanBase + 8*machine.CostSlotScanPer)
	if cost.FindSlot != wantFind {
		t.Errorf("FindSlot = %d, want %d", cost.FindSlot, wantFind)
	}
	if cost.PolicyCheck != machine.CostPolicyCheck || cost.WriteRule != machine.CostWriteRule {
		t.Errorf("cost = %+v", cost)
	}
	if cost.Slot != 7 {
		t.Errorf("slot = %d, want 7", cost.Slot)
	}
}

func TestDriverRejectsOverlap(t *testing.T) {
	r := newRig(t)
	a := eampu.Rule{Data: eampu.Region{Start: 0x20_0000, Size: 0x1000}, Perm: eampu.PermRW, Owner: 1}
	if _, err := r.c.Driver.Configure(a); err != nil {
		t.Fatal(err)
	}
	b := eampu.Rule{Data: eampu.Region{Start: 0x20_0800, Size: 0x1000}, Perm: eampu.PermRW, Owner: 2}
	if _, err := r.c.Driver.Configure(b); !errors.Is(err, eampu.ErrOverlap) {
		t.Errorf("overlapping rule = %v, want ErrOverlap", err)
	}
}

func TestProtectTaskIsolation(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, `
.task "sec"
.entry main
.stack 128
.bss 28
.text
main:
    jmp main
`)
	tcb := r.loadTask(t, im, rtos.KindSecure, 3)
	region := tcb.Placement.Region()

	// OS cannot read the secure task's memory.
	var osErr error
	r.m.WithExecContext(OSBase, func() { _, osErr = r.m.Read32(region.Start) })
	if osErr == nil {
		t.Error("OS read secure task memory")
	}
	// The task can access itself.
	var selfErr error
	r.m.WithExecContext(region.Start, func() { _, selfErr = r.m.Read32(region.Start) })
	if selfErr != nil {
		t.Errorf("self access: %v", selfErr)
	}
	// The Int Mux can (context save).
	var muxErr error
	r.m.WithExecContext(IntMuxBase, func() { _, muxErr = r.m.Read32(region.Start) })
	if muxErr != nil {
		t.Errorf("int mux access: %v", muxErr)
	}
}

func TestProtectNormalTaskOSAccessible(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, `
.task "norm"
.entry main
.stack 128
.text
main:
    jmp main
`)
	tcb := r.loadTask(t, im, rtos.KindNormal, 3)
	region := tcb.Placement.Region()
	var osErr error
	r.m.WithExecContext(OSBase, func() { _, osErr = r.m.Read32(region.Start) })
	if osErr != nil {
		t.Errorf("OS denied access to normal task: %v", osErr)
	}
	// Another task region still cannot.
	var taskErr error
	r.m.WithExecContext(0x30_0000, func() { _, taskErr = r.m.Read32(region.Start) })
	if taskErr == nil {
		t.Error("foreign code read normal task memory")
	}
}

func TestIntMuxCosts(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, `
.task "x"
.entry main
.stack 128
.text
main:
    jmp main
`)
	tcb := r.loadTask(t, im, rtos.KindSecure, 3)

	// Run a bit so the context is live, then force an interrupt save.
	if err := r.k.RunUntil(r.m.Cycles() + 2_000); err != nil {
		t.Fatal(err)
	}
	r.m.RaiseIRQ(machine.IRQExt0)
	before := r.m.Cycles()
	if err := r.k.RunUntil(r.m.Cycles() + 1); err != nil {
		t.Fatal(err)
	}
	_ = before
	if r.c.Mux.Saves() == 0 {
		t.Fatal("no secure save happened")
	}
	_ = tcb
}

func TestMeasurementMatchesImageIdentity(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, `
.task "meas"
.entry main
.stack 256
.bss 64
.text
main:
    ldi32 r1, buf
    ldi32 r2, buf+4
    ld r0, [r1+0]
    hlt
.data
buf:
    .word 41
    .word main
`)
	base, _, err := r.k.Alloc.Alloc(im.LoadSize())
	if err != nil {
		t.Fatal(err)
	}
	job := loader.NewJob(r.m, im, base)
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	mj := r.c.RTM.NewMeasureJob(im, base, nil)
	if _, err := mj.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := mj.Identity()
	if err != nil {
		t.Fatal(err)
	}
	want := IdentityOfImage(im)
	if got != want {
		t.Errorf("measured identity %x != image identity %x", got, want)
	}
	if mj.Reverted() != len(im.Relocs) {
		t.Errorf("reverted %d fixups, want %d", mj.Reverted(), len(im.Relocs))
	}

	// Position independence: load at a different base, same identity.
	base2, _, err := r.k.Alloc.Alloc(im.LoadSize() + 4096)
	if err != nil {
		t.Fatal(err)
	}
	base2 += 1024 // guaranteed different offset within pool
	job2 := loader.NewJob(r.m, im, base2)
	if _, err := job2.Run(); err != nil {
		t.Fatal(err)
	}
	mj2 := r.c.RTM.NewMeasureJob(im, base2, nil)
	if _, err := mj2.Run(); err != nil {
		t.Fatal(err)
	}
	got2, _ := mj2.Identity()
	if got2 != want {
		t.Error("measurement is position dependent")
	}
}

func TestMeasurementInterruptible(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, `
.task "big"
.entry main
.stack 128
.text
main:
    hlt
.data
`+genWords(200))
	base, _, err := r.k.Alloc.Alloc(im.LoadSize())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.NewJob(r.m, im, base).Run(); err != nil {
		t.Fatal(err)
	}

	whole := r.c.RTM.NewMeasureJob(im, base, nil)
	wholeCost, err := whole.Run()
	if err != nil {
		t.Fatal(err)
	}
	wid, _ := whole.Identity()

	chopped := r.c.RTM.NewMeasureJob(im, base, nil)
	var choppedCost uint64
	steps := 0
	for !chopped.Done() {
		used, err := chopped.Step(1) // one block at a time
		if err != nil {
			t.Fatal(err)
		}
		choppedCost += used
		steps++
		if steps > 10_000 {
			t.Fatal("measurement did not terminate")
		}
	}
	cid, _ := chopped.Identity()
	if cid != wid {
		t.Error("interrupted measurement changed the digest")
	}
	if choppedCost != wholeCost {
		t.Errorf("interrupted cost %d != whole cost %d", choppedCost, wholeCost)
	}
	if steps < 10 {
		t.Errorf("steps = %d; measurement not actually incremental", steps)
	}
	if chopped.Interruptions <= whole.Interruptions {
		t.Error("interruption counting wrong")
	}
}

// genWords emits n .word directives.
func genWords(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += ".word " + itoa(i) + "\n"
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestMeasurementCostFormula(t *testing.T) {
	// Table 7: T = init + revert-fixed + blocks·per-block (no relocs).
	r := newRig(t)
	for _, blocks := range []int{1, 2, 4, 8} {
		im := &telf.Image{
			Name:      "b",
			Text:      make([]byte, blocks*64),
			StackSize: 64,
		}
		base, _, err := r.k.Alloc.Alloc(im.LoadSize())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := loader.NewJob(r.m, im, base).Run(); err != nil {
			t.Fatal(err)
		}
		mj := r.c.RTM.NewMeasureJob(im, base, nil)
		cost, err := mj.Run()
		if err != nil {
			t.Fatal(err)
		}
		// header (20B) is hashed into the state but compressions happen
		// on section blocks; cost charged per section block.
		want := uint64(machine.CostMeasureInit) + uint64(machine.CostRevertFixed) +
			uint64(blocks)*machine.CostMeasurePerBlock
		if cost != want {
			t.Errorf("blocks=%d: cost = %d, want %d", blocks, cost, want)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, `
.task "reg"
.entry main
.stack 128
.bss 28
.text
main:
    jmp main
`)
	tcb := r.loadTask(t, im, rtos.KindSecure, 3)
	if r.c.RTM.Entries() != 1 {
		t.Fatalf("entries = %d", r.c.RTM.Entries())
	}
	e, ok := r.c.RTM.LookupByTask(tcb.ID)
	if !ok {
		t.Fatal("no registry entry")
	}
	if e.ID != IdentityOfImage(im) {
		t.Error("registered identity wrong")
	}
	if _, _, err := r.c.RTM.LookupByTruncID(e.TruncID); err != nil {
		t.Error("trunc lookup failed")
	}
	// Unload tears everything down via the kernel hook.
	slotsBefore := r.m.MPU.UsedSlots()
	if err := r.k.Unload(tcb.ID); err != nil {
		t.Fatal(err)
	}
	if r.c.RTM.Entries() != 0 {
		t.Error("registry entry survived unload")
	}
	if r.m.MPU.UsedSlots() != slotsBefore-1 {
		t.Errorf("EA-MPU slots not released: %d -> %d", slotsBefore, r.m.MPU.UsedSlots())
	}
	if _, _, err := r.c.RTM.LookupByTruncID(e.TruncID); !errors.Is(err, ErrUnknownIdentity) {
		t.Error("stale identity still resolvable")
	}
}

func TestAttestQuoteVerify(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, `
.task "att"
.entry main
.stack 128
.bss 28
.text
main:
    jmp main
`)
	tcb := r.loadTask(t, im, rtos.KindSecure, 3)

	const nonce = 0xDEADBEEF12345678
	q, err := r.c.Attest.QuoteTask(tcb.ID, nonce)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(testKey, "test-provider")
	if err := v.Verify(q, IdentityOfImage(im), nonce); err != nil {
		t.Fatalf("genuine quote rejected: %v", err)
	}
	// Wrong nonce → replay rejected.
	if err := v.Verify(q, IdentityOfImage(im), nonce+1); err == nil {
		t.Error("replayed quote accepted")
	}
	// Wrong expected identity.
	if err := v.Verify(q, sha1.Sum1([]byte("other")), nonce); err == nil {
		t.Error("wrong identity accepted")
	}
	// Forged MAC.
	q2 := q
	q2.MAC[0] ^= 1
	if err := v.Verify(q2, IdentityOfImage(im), nonce); err == nil {
		t.Error("forged MAC accepted")
	}
	// Verifier for another provider must reject (per-provider keys).
	v2 := NewVerifier(testKey, "other-provider")
	if err := v2.Verify(q, IdentityOfImage(im), nonce); err == nil {
		t.Error("cross-provider quote accepted")
	}
	// Local attestation.
	e, _ := r.c.RTM.LookupByTask(tcb.ID)
	if !r.c.Attest.LocalAttest(e.TruncID) {
		t.Error("local attest of loaded task failed")
	}
	if r.c.Attest.LocalAttest(e.TruncID + 1) {
		t.Error("local attest of absent identity succeeded")
	}
}

func TestStorageSealUnseal(t *testing.T) {
	r := newRig(t)
	imA := mustImage(t, `
.task "a"
.entry main
.stack 128
.bss 28
.text
main:
    jmp main
`)
	imB := mustImage(t, `
.task "b"
.entry main
.stack 128
.bss 28
.text
main:
    nop
    jmp main
`)
	a := r.loadTask(t, imA, rtos.KindSecure, 3)
	b := r.loadTask(t, imB, rtos.KindSecure, 3)

	secret := []byte("calibration table v7")
	if err := r.c.Storage.Store(a, 1, secret); err != nil {
		t.Fatal(err)
	}
	got, err := r.c.Storage.Load(a, 1)
	if err != nil || string(got) != string(secret) {
		t.Fatalf("load = %q, %v", got, err)
	}
	// A different task (different identity) cannot unseal.
	if _, err := r.c.Storage.Load(b, 1); !errors.Is(err, ErrSealDenied) {
		t.Errorf("cross-task load = %v, want ErrSealDenied", err)
	}
	// Tampering at rest is detected.
	if !r.c.Storage.TamperSlot(1) {
		t.Fatal("tamper failed")
	}
	if _, err := r.c.Storage.Load(a, 1); !errors.Is(err, ErrSealDenied) {
		t.Errorf("tampered load = %v, want ErrSealDenied", err)
	}
	// Empty slot.
	if _, err := r.c.Storage.Load(a, 99); !errors.Is(err, ErrNoSlot) {
		t.Errorf("empty slot = %v, want ErrNoSlot", err)
	}
	// Same identity re-loaded (fresh task, same binary) can unseal.
	if err := r.c.Storage.Store(a, 2, secret); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Unload(a.ID); err != nil {
		t.Fatal(err)
	}
	a2 := r.loadTask(t, imA, rtos.KindSecure, 3)
	got2, err := r.c.Storage.Load(a2, 2)
	if err != nil || string(got2) != string(secret) {
		t.Errorf("same-identity reload cannot unseal: %v", err)
	}
}

func TestSharedMemoryWindow(t *testing.T) {
	r := newRig(t)
	imA := mustImage(t, ".task \"wa\"\n.entry main\n.stack 128\n.bss 28\n.text\nmain:\n jmp main\n")
	imB := mustImage(t, ".task \"wb\"\n.entry main\n.stack 128\n.bss 28\n.text\nmain:\n nop\n jmp main\n")
	a := r.loadTask(t, imA, rtos.KindSecure, 3)
	b := r.loadTask(t, imB, rtos.KindSecure, 3)

	win, err := r.c.Proxy.SetupSharedMemory(r.k, a, b, 4096)
	if err != nil {
		t.Fatal(err)
	}
	probe := win.Region.Start + 16
	// Both tasks can write.
	for _, tcb := range []*rtos.TCB{a, b} {
		var werr error
		r.m.WithExecContext(tcb.Placement.Base, func() { werr = r.m.Write32(probe, 7) })
		if werr != nil {
			t.Errorf("task %q denied window access: %v", tcb.Name, werr)
		}
	}
	// "Accessible only to the communicating tasks" (§3): the window is
	// claimed, so the OS and third parties are denied.
	var osErr error
	r.m.WithExecContext(OSBase, func() { osErr = r.m.Write32(probe, 9) })
	if osErr == nil {
		t.Error("OS wrote the shared window")
	}
	c := r.loadTask(t, mustImage(t, ".task \"wc\"\n.entry main\n.stack 128\n.bss 28\n.text\nmain:\n nop\n nop\n jmp main\n"), rtos.KindSecure, 3)
	var thirdErr error
	r.m.WithExecContext(c.Placement.Base, func() { thirdErr = r.m.Write32(probe, 9) })
	if thirdErr == nil {
		t.Error("third task wrote the shared window")
	}

	// Unloading one endpoint tears the window down: memory returns to
	// the pool and the peer's grant is gone.
	liveBefore := r.k.Alloc.LiveCount()
	if err := r.k.Unload(a.ID); err != nil {
		t.Fatal(err)
	}
	if got := r.k.Alloc.LiveCount(); got != liveBefore-2 {
		t.Errorf("live allocations after unload = %d, want %d (task + window freed)", got, liveBefore-2)
	}
	found := false
	for i := 0; i < 18; i++ {
		if rule, used := r.m.MPU.Slot(i); used && rule.Data == win.Region {
			found = true
		}
	}
	if found {
		t.Error("window rules survived endpoint unload")
	}
}

func TestIPCEndToEnd(t *testing.T) {
	r := newRig(t)
	recvIm := mustImage(t, `
.task "recv"
.entry main
.stack 192
.bss 28
.text
main:
    svc 18           ; blocking receive -> r0 = 2 when message present
    cmpi r0, 2
    bne fail
    ; mailbox at bss base: load payload word 4 and print low byte
    ldi32 r6, 0      ; placeholder; real address computed below
fail:
    svc 1
`)
	_ = recvIm
	// Instead of fighting the assembler for absolute mailbox addresses,
	// drive the proxy natively and verify the ISA-visible effects.
	imA := mustImage(t, ".task \"pa\"\n.entry main\n.stack 128\n.bss 28\n.text\nmain:\n jmp main\n")
	imB := mustImage(t, ".task \"pb\"\n.entry main\n.stack 128\n.bss 28\n.text\nmain:\n nop\n jmp main\n")
	sender := r.loadTask(t, imA, rtos.KindSecure, 3)
	receiver := r.loadTask(t, imB, rtos.KindSecure, 3)
	re, _ := r.c.RTM.LookupByTask(receiver.ID)
	se, _ := r.c.RTM.LookupByTask(sender.ID)

	status := r.c.Proxy.Send(r.k, sender, re.TruncID, []uint32{0xAAAA, 0xBBBB}, 8, false)
	if status != IPCStatusOK {
		t.Fatalf("send status = %d", status)
	}
	// Mailbox in receiver memory holds flags, authentic sender id, len,
	// payload.
	box := re.Placement.BSSBase()
	read := func(off uint32) uint32 {
		var v uint32
		r.m.WithExecContext(receiver.Placement.Base, func() { v, _ = r.m.Read32(box + off) })
		return v
	}
	if read(0) != 1 {
		t.Error("mailbox flag not set")
	}
	if got := uint64(read(4)) | uint64(read(8))<<32; got != se.TruncID {
		t.Errorf("sender id = %#x, want %#x", got, se.TruncID)
	}
	if read(12) != 8 || read(16) != 0xAAAA || read(20) != 0xBBBB {
		t.Error("payload corrupted")
	}
	// Second send to a full mailbox is rejected.
	if s := r.c.Proxy.Send(r.k, sender, re.TruncID, []uint32{1}, 4, false); s != IPCStatusFull {
		t.Errorf("send to full mailbox = %d, want %d", s, IPCStatusFull)
	}
	// Unknown receiver.
	if s := r.c.Proxy.Send(r.k, sender, 0xDEAD, nil, 0, false); s != IPCStatusNoReceiver {
		t.Errorf("send to unknown = %d", s)
	}
	// OS cannot forge a mailbox write directly.
	var osErr error
	r.m.WithExecContext(OSBase, func() { osErr = r.m.Write32(box, 0) })
	if osErr == nil {
		t.Error("OS wrote receiver mailbox directly")
	}
}

func TestIPCCostCanonical(t *testing.T) {
	// The proxy cost at the paper's benchmark point (two loaded tasks,
	// three payload words) must equal 1,208 cycles (§6).
	r := newRig(t)
	imA := mustImage(t, ".task \"ca\"\n.entry main\n.stack 128\n.bss 28\n.text\nmain:\n jmp main\n")
	imB := mustImage(t, ".task \"cb\"\n.entry main\n.stack 128\n.bss 28\n.text\nmain:\n nop\n jmp main\n")
	sender := r.loadTask(t, imA, rtos.KindSecure, 3)
	receiver := r.loadTask(t, imB, rtos.KindSecure, 3)
	re, _ := r.c.RTM.LookupByTask(receiver.ID)

	before := r.m.Cycles()
	status := r.c.Proxy.Send(r.k, sender, re.TruncID, []uint32{1, 2, 3}, 12, false)
	cost := r.m.Cycles() - before
	if status != IPCStatusOK {
		t.Fatalf("status = %d", status)
	}
	if cost != 1208 {
		t.Errorf("proxy cost = %d cycles, want 1208 (§6)", cost)
	}
}

func TestBootTwiceFails(t *testing.T) {
	r := newRig(t)
	if _, err := Boot(r.k, BootConfig{}); err == nil {
		t.Error("second boot succeeded")
	}
}

func TestQuoteWireFormat(t *testing.T) {
	r := newRig(t)
	im := mustImage(t, ".task \"w\"\n.entry main\n.stack 128\n.bss 28\n.text\nmain:\n jmp main\n")
	tcb := r.loadTask(t, im, rtos.KindSecure, 3)
	q, err := r.c.Attest.QuoteTask(tcb.ID, 777)
	if err != nil {
		t.Fatal(err)
	}
	wire := q.Marshal()
	if len(wire) != QuoteSize {
		t.Fatalf("wire size %d", len(wire))
	}
	q2, err := UnmarshalQuote(wire)
	if err != nil {
		t.Fatal(err)
	}
	if q2 != q {
		t.Error("wire round trip mismatch")
	}
	// The decoded quote verifies like the original.
	v := NewVerifier(testKey, "test-provider")
	if err := v.Verify(q2, IdentityOfImage(im), 777); err != nil {
		t.Error(err)
	}
	if _, err := UnmarshalQuote(wire[:10]); err == nil {
		t.Error("short wire accepted")
	}
}

func TestDuplicateIdentityRegistryFallback(t *testing.T) {
	// Two instances of the same binary share an identity; unloading one
	// must keep the identity resolvable via the other.
	r := newRig(t)
	im := mustImage(t, ".task \"dup\"\n.entry main\n.stack 128\n.bss 28\n.text\nmain:\n jmp main\n")
	a := r.loadTask(t, im, rtos.KindSecure, 3)
	b := r.loadTask(t, im, rtos.KindSecure, 3)
	ea, _ := r.c.RTM.LookupByTask(a.ID)
	eb, _ := r.c.RTM.LookupByTask(b.ID)
	if ea.TruncID != eb.TruncID {
		t.Fatal("same binary, different identities")
	}
	if err := r.k.Unload(b.ID); err != nil {
		t.Fatal(err)
	}
	e, _, err := r.c.RTM.LookupByTruncID(ea.TruncID)
	if err != nil {
		t.Fatalf("identity unresolvable after duplicate unload: %v", err)
	}
	if e.Task.ID != a.ID {
		t.Errorf("fallback resolved to task %d, want %d", e.Task.ID, a.ID)
	}
	if err := r.k.Unload(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.c.RTM.LookupByTruncID(ea.TruncID); err == nil {
		t.Error("identity resolvable after all instances unloaded")
	}
}
