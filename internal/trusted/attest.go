package trusted

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/hcrypto"
	"repro/internal/machine"
	"repro/internal/rtos"
	"repro/internal/sha1"
	"repro/internal/trace"
)

// Attest implements local and remote attestation (§3 "Attestation").
//
// Local attestation needs no cryptography: the EA-MPU guarantees that
// only the RTM can write identities, so reading idt from the registry
// *is* the attestation report.
//
// Remote attestation proves idt to a party outside the platform: the
// Remote Attest task MACs the identity (together with the verifier's
// nonce, preventing replay) under an attestation key Ka derived from
// the platform key Kp. Ka never leaves the trusted components; the
// EA-MPU rule on the key store admits reads from the RTM/Attest/Storage
// code regions only.
type Attest struct {
	m        *machine.Machine
	rtm      *RTM
	kp       []byte
	ka       []byte // default provider's attestation key
	provider string // default provider name (event labeling)
	// perProvider caches per-provider keys ("a key derivation scheme
	// which allows the creation of individual attestation keys per P",
	// §3 footnote 2, citing SANCUS).
	perProvider map[string][]byte
	// quarantined holds identities the supervisor has condemned; the
	// platform will not attest them, locally or remotely, even if the
	// binary is somehow loaded again.
	quarantined map[sha1.Digest]bool

	// Monotonic quote accounting.
	quotes       uint64
	quoteDenials uint64

	// Obs, when set, receives a typed event per quote request
	// (KindAttest, subject = provider).
	Obs trace.Sink
}

// QuoteCounts returns the number of quotes issued and denied (unknown
// identity or quarantine) since boot.
func (a *Attest) QuoteCounts() (issued, denied uint64) { return a.quotes, a.quoteDenials }

// noteQuote accounts one quote request and reports it on the sink.
func (a *Attest) noteQuote(provider string, id rtos.TaskID, err error) {
	if err != nil {
		a.quoteDenials++
	} else {
		a.quotes++
	}
	if a.Obs == nil {
		return
	}
	result := "ok"
	if err != nil {
		result = err.Error()
	}
	a.Obs.Emit(trace.Event{
		Cycle: a.m.Cycles(), Sub: trace.SubAttest,
		Kind: trace.KindAttest, Subject: provider,
		Attrs: []trace.Attr{
			trace.Num("task", uint64(id)),
			trace.Str("result", result),
		},
	})
}

// Quarantine marks a task identity as untrustworthy. Every later quote
// request for it fails with ErrQuarantined and LocalAttest denies it.
func (a *Attest) Quarantine(id sha1.Digest) {
	if a.quarantined == nil {
		a.quarantined = make(map[sha1.Digest]bool)
	}
	a.quarantined[id] = true
	a.m.Charge(machine.CostRegistryUpdate)
}

// Quarantined reports whether an identity is quarantined.
func (a *Attest) Quarantined(id sha1.Digest) bool { return a.quarantined[id] }

// AttestLabel is the KDF label for attestation keys.
const AttestLabel = "attest"

// Quote is a remote attestation report.
type Quote struct {
	ID    sha1.Digest // full task identity (not truncated)
	Nonce uint64      // verifier challenge
	MAC   sha1.Digest // HMAC(Ka, id ‖ nonce)
}

// Attestation errors.
var (
	ErrQuoteInvalid = errors.New("trusted: attestation quote rejected")
	ErrKeyDenied    = errors.New("trusted: platform key access denied")
	// ErrQuarantined is returned when quoting a task whose identity the
	// supervisor has quarantined: the platform refuses to vouch for a
	// binary that exhausted its restart budget.
	ErrQuarantined = errors.New("trusted: task identity quarantined")
)

// NewAttest creates the Remote Attest component, deriving Ka from the
// platform key for the given provider context (the per-provider scheme
// cited from SANCUS: each task provider P can be given its own key).
func NewAttest(m *machine.Machine, rtm *RTM, provider string) (*Attest, error) {
	kp, err := readPlatformKey(m, AttestBase)
	if err != nil {
		return nil, err
	}
	return &Attest{
		m:           m,
		rtm:         rtm,
		kp:          kp,
		ka:          hcrypto.DeriveKey(kp, AttestLabel, []byte(provider)),
		provider:    provider,
		perProvider: make(map[string][]byte),
	}, nil
}

// providerKey returns (deriving and caching on first use) the
// attestation key of a task provider.
func (a *Attest) providerKey(provider string) []byte {
	if k, ok := a.perProvider[provider]; ok {
		return k
	}
	a.m.Charge(machine.CostStorageKeyDerive)
	k := hcrypto.DeriveKey(a.kp, AttestLabel, []byte(provider))
	a.perProvider[provider] = k
	return k
}

// QuoteTaskForProvider produces a quote MACed under the given
// provider's individual attestation key, so mutually distrusting
// stakeholders verify their own tasks without sharing keys.
func (a *Attest) QuoteTaskForProvider(provider string, id rtos.TaskID, nonce uint64) (Quote, error) {
	e, ok := a.rtm.LookupByTask(id)
	if !ok {
		a.noteQuote(provider, id, ErrUnknownIdentity)
		return Quote{}, ErrUnknownIdentity
	}
	if a.quarantined[e.ID] {
		a.noteQuote(provider, id, ErrQuarantined)
		return Quote{}, ErrQuarantined
	}
	a.m.Charge(2 * machine.CostMeasurePerBlock)
	a.noteQuote(provider, id, nil)
	return Quote{
		ID:    e.ID,
		Nonce: nonce,
		MAC:   hcrypto.HMAC(a.providerKey(provider), quoteMessage(e.ID, nonce)),
	}, nil
}

// readPlatformKey reads Kp from the key-store device through the
// checked bus in the given component's protection context — the only
// way software can obtain the key, and one the EA-MPU restricts to the
// crypto-capable trusted components.
func readPlatformKey(m *machine.Machine, ctxBase uint32) ([]byte, error) {
	key := make([]byte, machine.KeySize)
	base := machine.DeviceAddr(machine.PageKeyStore)
	var err error
	m.WithExecContext(ctxBase, func() {
		for off := uint32(0); off < machine.KeySize; off += 4 {
			var v uint32
			v, err = m.Read32(base + off)
			if err != nil {
				return
			}
			binary.LittleEndian.PutUint32(key[off:], v)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrKeyDenied, err)
	}
	m.Charge(machine.KeySize / 4 * 4) // MMIO reads
	return key, nil
}

// quoteMessage is the MAC input: id ‖ nonce.
func quoteMessage(id sha1.Digest, nonce uint64) []byte {
	msg := make([]byte, 0, len(id)+8)
	msg = append(msg, id[:]...)
	msg = binary.LittleEndian.AppendUint64(msg, nonce)
	return msg
}

// QuoteSize is the wire size of an encoded quote.
const QuoteSize = sha1.Size + 8 + sha1.Size

// Marshal encodes the quote for transmission to a remote verifier:
// id ‖ nonce ‖ mac, little-endian nonce.
func (q Quote) Marshal() []byte {
	out := make([]byte, 0, QuoteSize)
	out = append(out, q.ID[:]...)
	out = binary.LittleEndian.AppendUint64(out, q.Nonce)
	out = append(out, q.MAC[:]...)
	return out
}

// UnmarshalQuote decodes a wire-format quote.
func UnmarshalQuote(b []byte) (Quote, error) {
	if len(b) != QuoteSize {
		return Quote{}, fmt.Errorf("%w: %d bytes, want %d", ErrQuoteInvalid, len(b), QuoteSize)
	}
	var q Quote
	copy(q.ID[:], b[:sha1.Size])
	q.Nonce = binary.LittleEndian.Uint64(b[sha1.Size:])
	copy(q.MAC[:], b[sha1.Size+8:])
	return q, nil
}

// QuoteTask produces a remote attestation report for a loaded task.
func (a *Attest) QuoteTask(id rtos.TaskID, nonce uint64) (Quote, error) {
	e, ok := a.rtm.LookupByTask(id)
	if !ok {
		a.noteQuote(a.provider, id, ErrUnknownIdentity)
		return Quote{}, ErrUnknownIdentity
	}
	if a.quarantined[e.ID] {
		a.noteQuote(a.provider, id, ErrQuarantined)
		return Quote{}, ErrQuarantined
	}
	// Two SHA-1 passes over a short message.
	a.m.Charge(2 * machine.CostMeasurePerBlock)
	a.noteQuote(a.provider, id, nil)
	return Quote{
		ID:    e.ID,
		Nonce: nonce,
		MAC:   hcrypto.HMAC(a.ka, quoteMessage(e.ID, nonce)),
	}, nil
}

// LocalAttest answers whether a task with the given truncated identity
// is currently loaded — the local attestation primitive. The querying
// task can trust the answer because only the RTM writes the registry.
func (a *Attest) LocalAttest(trunc uint64) bool {
	a.m.Charge(machine.CostIPCLookupBase + uint64(a.rtm.Entries())*machine.CostIPCLookupPerTask)
	e, _, err := a.rtm.LookupByTruncID(trunc)
	return err == nil && !a.quarantined[e.ID]
}

// Verifier is the remote party: it knows the platform key (in a real
// deployment, the derived Ka provisioned out of band) and the published
// task binaries.
type Verifier struct {
	ka []byte
}

// NewVerifier creates a verifier for the platform with key kp and the
// given provider context.
func NewVerifier(kp []byte, provider string) *Verifier {
	return &Verifier{ka: hcrypto.DeriveKey(kp, AttestLabel, []byte(provider))}
}

// Verify checks a quote against the expected identity and the nonce the
// verifier issued.
func (v *Verifier) Verify(q Quote, expected sha1.Digest, nonce uint64) error {
	if q.Nonce != nonce {
		return fmt.Errorf("%w: nonce mismatch", ErrQuoteInvalid)
	}
	if q.ID != expected {
		return fmt.Errorf("%w: identity mismatch", ErrQuoteInvalid)
	}
	want := hcrypto.HMAC(v.ka, quoteMessage(q.ID, q.Nonce))
	if !bytes.Equal(want[:], q.MAC[:]) {
		return fmt.Errorf("%w: bad MAC", ErrQuoteInvalid)
	}
	return nil
}

// VerifyMAC checks a quote's freshness (the nonce) and authenticity
// (the MAC binds the reported identity to the platform key) without
// appraising the reported identity against an expectation. Fleet
// verifiers use it when identity appraisal is a separate policy step —
// e.g. a cached membership test against a known-good measurement set —
// so the expensive MAC check and the policy decision can be layered.
func (v *Verifier) VerifyMAC(q Quote, nonce uint64) error {
	if q.Nonce != nonce {
		return fmt.Errorf("%w: nonce mismatch", ErrQuoteInvalid)
	}
	want := hcrypto.HMAC(v.ka, quoteMessage(q.ID, q.Nonce))
	if !bytes.Equal(want[:], q.MAC[:]) {
		return fmt.Errorf("%w: bad MAC", ErrQuoteInvalid)
	}
	return nil
}
