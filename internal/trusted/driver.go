package trusted

import (
	"fmt"

	"repro/internal/eampu"
	"repro/internal/machine"
	"repro/internal/rtos"
)

// Driver is the EA-MPU driver: the trusted component that performs
// "dynamic handling of tasks [which] requires the EA-MPU to be
// dynamically configurable" (§3). Configuring a rule decomposes into
// the three phases of Table 6 — finding a free slot (linear in the slot
// position), checking the candidate against every installed rule
// (constant full scan), and writing the rule — each charged separately.
type Driver struct {
	m *machine.Machine
}

// NewDriver creates the driver for machine m.
func NewDriver(m *machine.Machine) *Driver { return &Driver{m: m} }

// ConfigCost reports the cycle cost charged by the last Configure call,
// broken down per phase, for the Table 6 bench.
type ConfigCost struct {
	FindSlot    uint64
	PolicyCheck uint64
	WriteRule   uint64
	Slot        int
}

// Total returns the summed cost.
func (c ConfigCost) Total() uint64 { return c.FindSlot + c.PolicyCheck + c.WriteRule }

// Configure installs a rule through the full checked path and charges
// the Table 6 cost structure.
func (d *Driver) Configure(rule eampu.Rule) (ConfigCost, error) {
	var cost ConfigCost
	mpu := d.m.MPU

	slot, scanned, err := mpu.FindFreeSlot()
	cost.FindSlot = machine.CostSlotScanBase + uint64(scanned)*machine.CostSlotScanPer
	d.m.Charge(cost.FindSlot)
	if err != nil {
		return cost, err
	}
	cost.Slot = slot

	cost.PolicyCheck = machine.CostPolicyCheck
	d.m.Charge(cost.PolicyCheck)
	if err := mpu.PolicyCheck(rule); err != nil {
		return cost, err
	}

	cost.WriteRule = machine.CostWriteRule
	d.m.Charge(cost.WriteRule)
	if err := mpu.Install(slot, rule); err != nil {
		return cost, err
	}
	return cost, nil
}

// ProtectTask installs the isolation rules for a freshly loaded task
// (step 4 of the paper's loading sequence) and returns the total
// configuration cost:
//
//   - A secure task gets one rule: its own code may access its own
//     region, entered only at its entry point. Nothing else — not even
//     the OS — can touch it.
//   - A normal task gets the same self-rule plus a grant giving the OS
//     access (normal tasks are "isolated from other tasks but
//     accessible to the OS", §3).
func (d *Driver) ProtectTask(t *rtos.TCB) (uint64, error) {
	region := t.Placement.Region()
	self := eampu.Rule{
		Code:         region,
		Data:         region,
		Perm:         eampu.PermRWX,
		Entry:        t.EntryAddr,
		EnforceEntry: t.Kind == rtos.KindSecure,
		Owner:        t.MPUOwner,
	}
	cost, err := d.Configure(self)
	if err != nil {
		return cost.Total(), fmt.Errorf("trusted: protect %q: %w", t.Name, err)
	}
	total := cost.Total()
	if t.Kind == rtos.KindNormal {
		osGrant := eampu.Rule{
			Code:      OSRegion(),
			Data:      region,
			Perm:      eampu.PermRW,
			GrantOnly: true,
			Owner:     t.MPUOwner,
		}
		c2, err := d.Configure(osGrant)
		total += c2.Total()
		if err != nil {
			d.m.MPU.ClearOwner(t.MPUOwner)
			return total, fmt.Errorf("trusted: protect %q (OS grant): %w", t.Name, err)
		}
	}
	return total, nil
}

// ReleaseTask removes every rule a task owns (unload path).
func (d *Driver) ReleaseTask(t *rtos.TCB) int {
	n := d.m.MPU.ClearOwner(t.MPUOwner)
	d.m.Charge(uint64(n) * machine.CostWriteRule)
	return n
}
