package trusted

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/rtos"
	"repro/internal/telf"
	"repro/internal/trace"
)

// appSrc renders the updatable app at a given "release": same task
// name, different delay constant → different code, different identity.
func appSrc(release int) string {
	return fmt.Sprintf(".task \"app\"\n.entry e\n.stack 128\n.bss 28\n.text\ne:\n ldi32 r0, %d\n svc 2\n jmp e\n", 100+release)
}

// updRig extends the boot rig with an updater and a signed-package
// factory.
type updRig struct {
	*rig
	u  *Updater
	ku []byte
}

func newUpdRig(t *testing.T) *updRig {
	t.Helper()
	r := newRig(t)
	u, err := NewUpdater(r.k, r.c, "test-provider")
	if err != nil {
		t.Fatal(err)
	}
	return &updRig{rig: r, u: u, ku: DeriveUpdateKey(testKey, "test-provider")}
}

// pkg signs the given app release under the rig's update key.
func (r *updRig) pkg(t *testing.T, release int, version uint64) []byte {
	t.Helper()
	b, err := telf.Sign(mustImage(t, appSrc(release)), version, r.ku)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestUpdateAccepted(t *testing.T) {
	r := newUpdRig(t)
	buf := &trace.Buffer{}
	r.u.Obs = buf
	old := r.loadTask(t, mustImage(t, appSrc(1)), rtos.KindSecure, 3)
	oldEntry, _ := r.c.RTM.LookupByTask(old.ID)

	rep, err := r.u.Apply(old.ID, r.pkg(t, 2, 5), 0xC0FFEE)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if rep.FromVersion != 0 || rep.ToVersion != 5 {
		t.Errorf("versions = %d→%d, want 0→5", rep.FromVersion, rep.ToVersion)
	}
	if rep.NewIdentity == oldEntry.ID {
		t.Error("new identity equals old identity")
	}
	if rep.DowntimeCycles == 0 {
		t.Error("downtime not accounted")
	}
	// Old task gone, new task present and measured to the new identity.
	if _, ok := r.k.Task(old.ID); ok {
		t.Error("old task still installed after accepted update")
	}
	newTCB, ok := r.k.Task(rep.New)
	if !ok || newTCB.Name != "app" {
		t.Fatalf("new task missing: %v %v", newTCB, ok)
	}
	e, ok := r.c.RTM.LookupByTask(rep.New)
	if !ok || e.ID != rep.NewIdentity {
		t.Fatalf("RTM identity = %v, want %v", e, rep.NewIdentity)
	}
	// The in-band quote verifies against the provider's verifier.
	v := NewVerifier(testKey, "test-provider")
	if err := v.Verify(rep.Quote, rep.NewIdentity, 0xC0FFEE); err != nil {
		t.Errorf("post-update quote: %v", err)
	}
	// A second update sees the persisted counter.
	rep2, err := r.u.Apply(rep.New, r.pkg(t, 3, 9), 1)
	if err != nil {
		t.Fatalf("second Apply: %v", err)
	}
	if rep2.FromVersion != 5 || rep2.ToVersion != 9 {
		t.Errorf("second update versions = %d→%d, want 5→9", rep2.FromVersion, rep2.ToVersion)
	}
	// Exactly two accepted events, no denials.
	var accepted, denied int
	for _, ev := range buf.Events() {
		switch ev.Kind {
		case trace.KindUpdateAccepted:
			accepted++
			if ev.Sub != trace.SubUpdate || ev.Subject != "app" {
				t.Errorf("accepted event mislabeled: %+v", ev)
			}
		case trace.KindUpdateDenied, trace.KindUpdateRolledBack:
			denied++
		}
	}
	if accepted != 2 || denied != 0 {
		t.Errorf("events: %d accepted, %d denied/rolled-back; want 2, 0", accepted, denied)
	}
	if c := r.u.Counts(); c.Accepted != 2 || c.Denied != 0 || c.RolledBack != 0 {
		t.Errorf("counts = %+v", c)
	}
}

func TestUpdateDowngradeRefused(t *testing.T) {
	r := newUpdRig(t)
	buf := &trace.Buffer{}
	r.u.Obs = buf
	old := r.loadTask(t, mustImage(t, appSrc(1)), rtos.KindSecure, 3)
	rep, err := r.u.Apply(old.ID, r.pkg(t, 2, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Older version, perfectly valid signature: refused.
	if _, err := r.u.Apply(rep.New, r.pkg(t, 3, 4), 0); !errors.Is(err, ErrUpdateDowngrade) {
		t.Fatalf("downgrade Apply = %v, want ErrUpdateDowngrade", err)
	}
	// Equal version is not fresher either.
	if _, err := r.u.Apply(rep.New, r.pkg(t, 3, 5), 0); !errors.Is(err, ErrUpdateDowngrade) {
		t.Fatalf("equal-version Apply = %v, want ErrUpdateDowngrade", err)
	}
	// The running task is untouched and still attests.
	if _, err := r.c.Attest.QuoteTask(rep.New, 1); err != nil {
		t.Errorf("quote after refused downgrade: %v", err)
	}
	reasons := deniedReasons(buf)
	if len(reasons) != 2 || reasons[0] != DenyDowngrade || reasons[1] != DenyDowngrade {
		t.Errorf("denied reasons = %v", reasons)
	}
}

func TestUpdateBadSignatureAndCorruptRefused(t *testing.T) {
	r := newUpdRig(t)
	buf := &trace.Buffer{}
	r.u.Obs = buf
	old := r.loadTask(t, mustImage(t, appSrc(1)), rtos.KindSecure, 3)

	// Signed under the wrong key.
	wrong, err := telf.Sign(mustImage(t, appSrc(2)), 5, []byte("not-the-key"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.u.Apply(old.ID, wrong, 0); !errors.Is(err, ErrUpdateBadSignature) {
		t.Fatalf("bad-sig Apply = %v", err)
	}
	// Flipped payload bit.
	bad := r.pkg(t, 2, 5)
	bad[len(bad)-1] ^= 0x10
	if _, err := r.u.Apply(old.ID, bad, 0); !errors.Is(err, ErrUpdateCorrupt) {
		t.Fatalf("corrupt Apply = %v", err)
	}
	if _, err := r.u.Apply(old.ID, bad, 0); !errors.Is(err, ErrUpdateDenied) {
		t.Fatal("corrupt denial does not wrap ErrUpdateDenied")
	}
	// A package for a different task name is not a valid target.
	other, err := telf.Sign(mustImage(t, ".task \"other\"\n.entry e\n.stack 128\n.bss 28\n.text\ne:\n jmp e\n"), 5, r.ku)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.u.Apply(old.ID, other, 0); !errors.Is(err, ErrUpdateBadTarget) {
		t.Fatalf("wrong-name Apply = %v", err)
	}
	// Unknown task ID.
	if _, err := r.u.Apply(rtos.TaskID(9999), r.pkg(t, 2, 5), 0); !errors.Is(err, ErrUpdateBadTarget) {
		t.Fatalf("unknown-task Apply = %v", err)
	}
	// Old task untouched throughout.
	if _, ok := r.k.Task(old.ID); !ok {
		t.Fatal("old task lost to a refused update")
	}
	want := []string{DenyBadSig, DenyCorrupt, DenyCorrupt, DenyBadTarget, DenyBadTarget}
	got := deniedReasons(buf)
	if len(got) != len(want) {
		t.Fatalf("denied reasons = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reason[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestUpdateQuarantinedRefused(t *testing.T) {
	r := newUpdRig(t)
	old := r.loadTask(t, mustImage(t, appSrc(1)), rtos.KindSecure, 3)
	// Quarantining the *new* image's identity refuses the update before
	// any memory is touched.
	r.c.Attest.Quarantine(IdentityOfImage(mustImage(t, appSrc(2))))
	if _, err := r.u.Apply(old.ID, r.pkg(t, 2, 5), 0); !errors.Is(err, ErrUpdateQuarantined) {
		t.Fatalf("quarantined-new Apply = %v", err)
	}
	// Quarantining the old identity refuses updates of that device too.
	e, _ := r.c.RTM.LookupByTask(old.ID)
	r.c.Attest.Quarantine(e.ID)
	if _, err := r.u.Apply(old.ID, r.pkg(t, 3, 6), 0); !errors.Is(err, ErrUpdateQuarantined) {
		t.Fatalf("quarantined-old Apply = %v", err)
	}
}

func TestUpdateCounterTamperRefused(t *testing.T) {
	r := newUpdRig(t)
	old := r.loadTask(t, mustImage(t, appSrc(1)), rtos.KindSecure, 3)
	rep, err := r.u.Apply(old.ID, r.pkg(t, 2, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.c.Storage.TamperSlot(CounterSlot("app")) {
		t.Fatal("counter slot empty after accepted update")
	}
	// A tampered counter must fail closed — even for a version that
	// would legitimately be fresher.
	if _, err := r.u.Apply(rep.New, r.pkg(t, 3, 9), 0); !errors.Is(err, ErrUpdateCounterTampered) {
		t.Fatalf("tampered-counter Apply = %v, want ErrUpdateCounterTampered", err)
	}
}

func TestUpdateRollbackAtEveryPhase(t *testing.T) {
	for _, phase := range UpdatePhases() {
		phase := phase
		t.Run(phase.String(), func(t *testing.T) {
			r := newUpdRig(t)
			buf := &trace.Buffer{}
			r.u.Obs = buf
			old := r.loadTask(t, mustImage(t, appSrc(1)), rtos.KindSecure, 3)
			live := r.k.Alloc.LiveCount()

			injected := errors.New("power fail")
			r.u.FaultHook = func(p UpdatePhase) error {
				if p == phase {
					return injected
				}
				return nil
			}
			_, err := r.u.Apply(old.ID, r.pkg(t, 2, 5), 0)
			if !errors.Is(err, ErrUpdateAborted) {
				t.Fatalf("Apply = %v, want ErrUpdateAborted", err)
			}
			// The old task survived, is schedulable, and still attests.
			tcb, ok := r.k.Task(old.ID)
			if !ok {
				t.Fatal("old task gone after rollback")
			}
			if tcb.State == rtos.StateSuspended || tcb.State == rtos.StateDead {
				t.Fatalf("old task state = %v after rollback", tcb.State)
			}
			if _, err := r.c.Attest.QuoteTask(old.ID, 7); err != nil {
				t.Errorf("old task no longer attests: %v", err)
			}
			// No leaked allocations, no half-installed twin.
			if got := r.k.Alloc.LiveCount(); got != live {
				t.Errorf("allocator live count %d, want %d", got, live)
			}
			if n := len(r.k.Tasks()); n != 1 {
				t.Errorf("%d tasks after rollback, want 1", n)
			}
			// The counter was not burned: the same version still applies
			// cleanly afterwards.
			r.u.FaultHook = nil
			if _, err := r.u.Apply(old.ID, r.pkg(t, 2, 5), 0); err != nil {
				t.Fatalf("retry after rollback: %v", err)
			}
			// Exactly one rolled-back event naming the phase, then one
			// accepted event.
			var rolled, accepted int
			for _, ev := range buf.Events() {
				switch ev.Kind {
				case trace.KindUpdateRolledBack:
					rolled++
					if a, _ := ev.Attr("phase"); a.Str != phase.String() {
						t.Errorf("rolled-back phase attr = %q, want %q", a.Str, phase)
					}
				case trace.KindUpdateAccepted:
					accepted++
				}
			}
			if rolled != 1 || accepted != 1 {
				t.Errorf("events: %d rolled-back, %d accepted; want 1, 1", rolled, accepted)
			}
		})
	}
}

// deniedReasons extracts the reason attrs of denied events in order.
func deniedReasons(buf *trace.Buffer) []string {
	var out []string
	for _, ev := range buf.Events() {
		if ev.Kind == trace.KindUpdateDenied {
			a, _ := ev.Attr("reason")
			out = append(out, a.Str)
		}
	}
	return out
}
