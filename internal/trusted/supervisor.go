package trusted

import (
	"fmt"

	"repro/internal/rtos"
	"repro/internal/sha1"
	"repro/internal/telf"
	"repro/internal/trace"
)

// The trusted supervisor turns the kernel's structured exit records into
// a recovery policy. The paper's argument (§1, §5) is that a compromised
// or crashed task "can be restarted or substituted by another task"
// because isolation confines the damage; the supervisor is the component
// that actually does the restarting — and that stops vouching for a
// binary which keeps crashing.
//
// Policy, per watched task:
//
//   - a fault exit (EA-MPU violation, bad syscall, stack overflow,
//     watchdog verdict) triggers a restart: the image is re-loaded
//     through the full loading sequence, so the new incarnation gets a
//     fresh EA-MPU region and a fresh RTM measurement;
//   - after MaxRestarts restarts, the next fault condemns the identity:
//     the task stays dead and Attest refuses to quote it (quarantine);
//   - a watchdog kills watched tasks that stop making CPU progress
//     (hung) or exceed a CPU quota per check window (runaway);
//   - a voluntary exit (halt, exit syscall, unload) ends supervision.
//
// Everything is driven by the simulated cycle counter, so supervised
// runs are exactly as deterministic as unsupervised ones.

// SupervisorPolicy parameterizes recovery.
type SupervisorPolicy struct {
	// MaxRestarts is how many times a faulting task is restarted before
	// quarantine (default 2).
	MaxRestarts int
	// RestartDelay is the cycle delay before the first restart; it
	// doubles per restart of the same task (default 2 * tick).
	RestartDelay uint64
	// CheckPeriod is the watchdog inspection period in cycles
	// (default 8 * tick).
	CheckPeriod uint64
	// HangTimeout: a watched task making no CPU progress for this many
	// cycles is killed as hung. 0 disables hang detection.
	HangTimeout uint64
	// CPUQuota: a watched task using more than this many CPU cycles
	// within one check window is killed as runaway. 0 disables.
	CPUQuota uint64
	// PollPeriod is how often the supervisor polls an in-flight reload
	// (default CheckPeriod/4).
	PollPeriod uint64
}

// withDefaults fills zero fields from the tick period.
func (p SupervisorPolicy) withDefaults(tick uint64) SupervisorPolicy {
	if tick == 0 {
		tick = rtos.DefaultTickPeriod
	}
	if p.MaxRestarts == 0 {
		p.MaxRestarts = 2
	}
	if p.RestartDelay == 0 {
		p.RestartDelay = 2 * tick
	}
	if p.CheckPeriod == 0 {
		p.CheckPeriod = 8 * tick
	}
	if p.PollPeriod == 0 {
		p.PollPeriod = p.CheckPeriod / 4
	}
	return p
}

// ReloadTicket is an in-flight task reload the supervisor polls.
// *core.LoadRequest satisfies it.
type ReloadTicket interface {
	Done() bool
	Err() error
	Task() *rtos.TCB
}

// Reloader re-runs the platform's loading sequence for a restart.
// core.Platform provides it via LoadTaskAsync.
type Reloader interface {
	Reload(im *telf.Image, kind rtos.TaskKind, prio int) ReloadTicket
}

// WatchState is the supervision state of one task.
type WatchState int

// Watch states.
const (
	WatchHealthy WatchState = iota
	WatchRestarting
	WatchQuarantined
	WatchEnded // voluntary exit; supervision over
)

// String names the state.
func (s WatchState) String() string {
	switch s {
	case WatchHealthy:
		return "healthy"
	case WatchRestarting:
		return "restarting"
	case WatchQuarantined:
		return "quarantined"
	case WatchEnded:
		return "ended"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// SupEvent is one entry of the supervisor's audit log.
type SupEvent struct {
	Cycle  uint64
	Task   string
	What   string // "fault", "restart", "restarted", "restart-failed", "quarantine", "watchdog-hang", "watchdog-quota", "ended"
	Detail string
}

// maxEvents bounds the audit log so week-long chaos runs cannot grow it
// without bound; older entries are dropped (the count is kept).
const maxEvents = 4096

// watch is the supervisor's record of one task under supervision.
type watch struct {
	name     string
	im       *telf.Image
	kind     rtos.TaskKind
	prio     int
	identity sha1.Digest

	id       rtos.TaskID
	state    WatchState
	restarts int
	lastExit rtos.ExitReason

	// restart machinery
	restartAt uint64
	ticket    ReloadTicket

	// watchdog baselines
	lastCPU      uint64 // task CPUCycles at last progress
	lastProgress uint64 // cycle of last observed progress
	windowCPU    uint64 // task CPUCycles at window start
	windowStart  uint64
}

// WatchStatus is the queryable snapshot of one supervised task.
type WatchStatus struct {
	Name     string
	State    WatchState
	TaskID   rtos.TaskID
	Restarts int
	LastExit rtos.ExitReason
}

// Supervisor is the trusted recovery component. It runs as a native
// service task so all its work is scheduled and cycle-accounted like any
// other trusted component.
type Supervisor struct {
	k      *rtos.Kernel
	att    *Attest
	reload Reloader
	pol    SupervisorPolicy

	byID   map[rtos.TaskID]*watch
	byName map[string]*watch
	order  []*watch

	nextCheck uint64
	events    []SupEvent
	dropped   int
	tcb       *rtos.TCB

	counts SupCounts

	// Obs, when set, receives every audit-log entry as a typed event
	// (KindSupervisor, subject = task name). Unlike the bounded audit
	// log, the sink sees the full stream.
	Obs trace.Sink
}

// SupCounts are the supervisor's monotonic action counters — unlike the
// audit log they are never truncated, so metrics stay exact over
// arbitrarily long chaos runs.
type SupCounts struct {
	Faults          uint64 // fault exits observed on watched tasks
	Restarts        uint64 // restart attempts initiated
	RestartFailures uint64 // reloads that failed
	Quarantines     uint64 // identities condemned
	WatchdogKills   uint64 // hang + quota kills
	Ended           uint64 // supervisions ended by voluntary exit
}

// Counts returns the supervisor's action counters.
func (s *Supervisor) Counts() SupCounts { return s.counts }

// Supervision cycle costs (simulated): the bookkeeping is cheap trusted
// code, but it is not free.
const (
	supCheckBase    = 60  // per watchdog sweep
	supCheckPerTask = 25  // per watched task inspected
	supRestartInit  = 150 // per restart initiation
)

// NewSupervisor creates the supervisor. Call Attach (or install it as a
// service task and wire Kernel.OnTaskExit to TaskExited) to activate it.
func NewSupervisor(k *rtos.Kernel, att *Attest, reload Reloader, pol SupervisorPolicy) *Supervisor {
	return &Supervisor{
		k:      k,
		att:    att,
		reload: reload,
		pol:    pol.withDefaults(k.Cfg.TickPeriod),
		byID:   make(map[rtos.TaskID]*watch),
		byName: make(map[string]*watch),
	}
}

// Policy returns the effective (defaults-filled) policy.
func (s *Supervisor) Policy() SupervisorPolicy { return s.pol }

// Attach installs the supervisor as a service task at the given priority
// and wires the kernel's exit hook to it. prev exit hooks are chained.
func (s *Supervisor) Attach(prio int) (*rtos.TCB, error) {
	tcb, err := s.k.NewServiceTask("supervisor", prio, s)
	if err != nil {
		return nil, err
	}
	s.tcb = tcb
	prev := s.k.OnTaskExit
	s.k.OnTaskExit = func(k *rtos.Kernel, rec rtos.ExitRecord) {
		if prev != nil {
			prev(k, rec)
		}
		s.TaskExited(rec)
	}
	return tcb, nil
}

// Watch places a loaded task under supervision. im is the image to
// restart from; identity the measured identity (zero for normal tasks).
func (s *Supervisor) Watch(t *rtos.TCB, im *telf.Image, identity sha1.Digest) {
	now := s.k.M.Cycles()
	w := &watch{
		name:         t.Name,
		im:           im,
		kind:         t.Kind,
		prio:         t.Priority,
		identity:     identity,
		id:           t.ID,
		state:        WatchHealthy,
		lastCPU:      t.CPUCycles,
		lastProgress: now,
		windowCPU:    t.CPUCycles,
		windowStart:  now,
	}
	s.byID[t.ID] = w
	s.byName[w.name] = w
	s.order = append(s.order, w)
	if s.nextCheck == 0 {
		s.nextCheck = now + s.pol.CheckPeriod
	}
	if s.tcb != nil {
		s.k.WakeService(s.tcb)
	}
}

// Status returns the supervision snapshot for a task name.
func (s *Supervisor) Status(name string) (WatchStatus, bool) {
	w, ok := s.byName[name]
	if !ok {
		return WatchStatus{}, false
	}
	return WatchStatus{
		Name:     w.name,
		State:    w.state,
		TaskID:   w.id,
		Restarts: w.restarts,
		LastExit: w.lastExit,
	}, true
}

// Events returns the audit log (oldest first; may have been truncated).
func (s *Supervisor) Events() []SupEvent { return s.events }

// DroppedEvents returns how many audit entries were discarded to bound
// the log.
func (s *Supervisor) DroppedEvents() int { return s.dropped }

func (s *Supervisor) logEvent(task, what, detail string) {
	if len(s.events) >= maxEvents {
		n := copy(s.events, s.events[len(s.events)/2:])
		s.events = s.events[:n]
		s.dropped += maxEvents - n
	}
	s.events = append(s.events, SupEvent{
		Cycle: s.k.M.Cycles(), Task: task, What: what, Detail: detail,
	})
	switch what {
	case "fault":
		s.counts.Faults++
	case "restart":
		s.counts.Restarts++
	case "restart-failed":
		s.counts.RestartFailures++
	case "quarantine":
		s.counts.Quarantines++
	case "watchdog-hang", "watchdog-quota":
		s.counts.WatchdogKills++
	case "ended":
		s.counts.Ended++
	}
	if s.Obs != nil {
		s.Obs.Emit(trace.Event{
			Cycle: s.k.M.Cycles(), Sub: trace.SubSupervisor,
			Kind: trace.KindSupervisor, Subject: task,
			Attrs: []trace.Attr{trace.Str("what", what), trace.Str("detail", detail)},
		})
	}
}

// TaskExited is the kernel exit-hook target: classify the exit and
// decide restart vs quarantine vs end-of-supervision.
func (s *Supervisor) TaskExited(rec rtos.ExitRecord) {
	w, ok := s.byID[rec.ID]
	if !ok || w.state != WatchHealthy {
		return
	}
	delete(s.byID, rec.ID)
	s.handleExit(w, rec.Reason)
}

// handleExit applies the recovery policy to one observed exit.
func (s *Supervisor) handleExit(w *watch, reason rtos.ExitReason) {
	w.lastExit = reason
	if !reason.Cause.IsFault() {
		w.state = WatchEnded
		s.logEvent(w.name, "ended", reason.String())
		return
	}
	s.logEvent(w.name, "fault", reason.String())
	if w.restarts >= s.pol.MaxRestarts {
		s.quarantine(w)
		return
	}
	// Exponential backoff: delay doubles per restart already consumed.
	delay := s.pol.RestartDelay << uint(w.restarts)
	w.state = WatchRestarting
	w.restartAt = s.k.M.Cycles() + delay
	w.ticket = nil
	if s.tcb != nil {
		s.k.WakeService(s.tcb)
	}
}

// quarantine condemns the identity: no more restarts, no more quotes.
func (s *Supervisor) quarantine(w *watch) {
	w.state = WatchQuarantined
	w.ticket = nil
	if s.att != nil && w.identity != (sha1.Digest{}) {
		s.att.Quarantine(w.identity)
	}
	s.logEvent(w.name, "quarantine",
		fmt.Sprintf("restart budget (%d) exhausted", s.pol.MaxRestarts))
}

// HasWork implements the kernel's wakeable probe. An in-flight reload
// whose ticket is not yet done does NOT count as work: the supervisor
// must go idle and poll (NextWake), otherwise it would starve the
// lower-priority loader service that completes the reload.
func (s *Supervisor) HasWork() bool {
	now := s.k.M.Cycles()
	if s.nextCheck != 0 && now >= s.nextCheck {
		return true
	}
	for _, w := range s.order {
		if w.state != WatchRestarting {
			continue
		}
		if w.ticket != nil {
			if w.ticket.Done() {
				return true
			}
			continue
		}
		if now >= w.restartAt {
			return true
		}
	}
	return false
}

// NextWake tells the scheduler when the supervisor needs the CPU again:
// the earliest of the watchdog check, a due restart, or a reload poll.
func (s *Supervisor) NextWake() uint64 {
	var next uint64
	consider := func(c uint64) {
		if c != 0 && (next == 0 || c < next) {
			next = c
		}
	}
	if s.watching() {
		consider(s.nextCheck)
	}
	now := s.k.M.Cycles()
	for _, w := range s.order {
		if w.state != WatchRestarting {
			continue
		}
		if w.ticket != nil {
			consider(now + s.pol.PollPeriod)
		} else {
			consider(w.restartAt)
		}
	}
	return next
}

// watching reports whether any task is still under active supervision.
func (s *Supervisor) watching() bool {
	for _, w := range s.order {
		if w.state == WatchHealthy || w.state == WatchRestarting {
			return true
		}
	}
	return false
}

// Step implements rtos.Service: run restarts and the watchdog.
func (s *Supervisor) Step(k *rtos.Kernel, self *rtos.TCB, budget uint64) (uint64, rtos.NativeStatus) {
	s.tcb = self
	var used uint64
	now := k.M.Cycles()

	for _, w := range s.order {
		if w.state != WatchRestarting {
			continue
		}
		if w.ticket == nil && now >= w.restartAt {
			used += supRestartInit
			w.restarts++
			w.ticket = s.reload.Reload(w.im, w.kind, w.prio)
			s.logEvent(w.name, "restart",
				fmt.Sprintf("attempt %d/%d", w.restarts, s.pol.MaxRestarts))
		}
		if w.ticket != nil && w.ticket.Done() {
			used += supCheckPerTask
			if err := w.ticket.Err(); err != nil {
				s.logEvent(w.name, "restart-failed", err.Error())
				if w.restarts >= s.pol.MaxRestarts {
					s.quarantine(w)
				} else {
					w.restartAt = now + (s.pol.RestartDelay << uint(w.restarts))
					w.ticket = nil
				}
				continue
			}
			nt := w.ticket.Task()
			if rec, gone := k.ExitInfo(nt.ID); gone {
				// The incarnation crashed before this poll could adopt it
				// (its exit hook found no watch bound to the new ID).
				// Apply the policy to the recorded exit now.
				w.ticket = nil
				s.handleExit(w, rec.Reason)
				continue
			}
			s.adopt(w, nt)
		}
	}

	if s.nextCheck != 0 && now >= s.nextCheck {
		used += s.watchdogSweep(now)
		s.nextCheck = now + s.pol.CheckPeriod
	}

	if s.HasWork() {
		return used, rtos.NativeReady
	}
	if !s.watching() {
		s.nextCheck = 0
	}
	return used, rtos.NativeIdle
}

// adopt rebinds a watch to the freshly-reloaded incarnation.
func (s *Supervisor) adopt(w *watch, t *rtos.TCB) {
	now := s.k.M.Cycles()
	w.id = t.ID
	w.state = WatchHealthy
	w.ticket = nil
	w.lastCPU = t.CPUCycles
	w.lastProgress = now
	w.windowCPU = t.CPUCycles
	w.windowStart = now
	s.byID[t.ID] = w
	s.logEvent(w.name, "restarted", fmt.Sprintf("task id %d", t.ID))
}

// watchdogSweep inspects every healthy watched task for hangs and CPU
// quota violations, killing offenders through the kernel (which routes
// the exit straight back into TaskExited → restart or quarantine).
func (s *Supervisor) watchdogSweep(now uint64) uint64 {
	used := uint64(supCheckBase)
	for _, w := range s.order {
		if w.state != WatchHealthy {
			continue
		}
		used += supCheckPerTask
		t, ok := s.k.Task(w.id)
		if !ok {
			continue // exit hook will have run; nothing to inspect
		}
		cpu := t.CPUCycles
		if cpu > w.lastCPU {
			w.lastCPU = cpu
			w.lastProgress = now
		}
		if s.pol.CPUQuota != 0 && cpu-w.windowCPU > s.pol.CPUQuota {
			s.logEvent(w.name, "watchdog-quota",
				fmt.Sprintf("%d cycles in window, quota %d", cpu-w.windowCPU, s.pol.CPUQuota))
			s.k.Kill(w.id, rtos.ExitWatchdog,
				fmt.Sprintf("cpu quota exceeded: %d > %d", cpu-w.windowCPU, s.pol.CPUQuota))
			continue
		}
		if s.pol.HangTimeout != 0 && now-w.lastProgress >= s.pol.HangTimeout {
			s.logEvent(w.name, "watchdog-hang",
				fmt.Sprintf("no progress for %d cycles", now-w.lastProgress))
			s.k.Kill(w.id, rtos.ExitWatchdog,
				fmt.Sprintf("hung: no progress for %d cycles", now-w.lastProgress))
			continue
		}
		w.windowCPU = cpu
		w.windowStart = now
	}
	return used
}
