package trusted

import (
	"repro/internal/loader"
	"repro/internal/rtos"
	"repro/internal/sverify"
)

// AllowedSyscalls returns the authoritative SVC allowlist of the booted
// platform: the kernel services plus the trusted services this layer
// registers at SVCUserBase. sverify.DefaultSyscalls mirrors this set
// with literal numbers (it cannot import this package);
// TestDefaultSyscallsMatchPlatform pins the two together.
func AllowedSyscalls() map[uint16]bool {
	m := map[uint16]bool{
		rtos.SVCYield:   true,
		rtos.SVCExit:    true,
		rtos.SVCDelay:   true,
		rtos.SVCPutChar: true,
		rtos.SVCGetTime: true,
	}
	for _, n := range []uint16{
		SVCIPCSend, SVCIPCSendSync, SVCIPCRecv, SVCGetID, SVCAttestLocal,
		SVCSealStore, SVCSealLoad, SVCGetMailbox, SVCShareMem,
	} {
		m[n] = true
	}
	return m
}

// EnableVerifyGate arms the strict pre-load gate: from now on the
// loader service statically verifies every image before allocating
// memory for it and refuses — with a typed verify-denied trace event —
// to measure-and-install images with Error findings. ramSize is the
// platform's RAM size (for the beyond-RAM access checks).
func (c *Components) EnableVerifyGate(ramSize uint32) {
	if c.Gate != nil {
		return // idempotent: keep an already-armed gate (and its policy)
	}
	c.Gate = &loader.Gate{Cfg: sverify.Config{
		RAMSize:  ramSize,
		Syscalls: AllowedSyscalls(),
	}}
}

// EnableBoundsAdmission arms the resource-bound admission check on top
// of the strict gate: images whose certified worst-case stack depth
// (plus the pre-emption context frame) does not fit their stack
// reservation — or whose worst-case burst exceeds a cycle budget
// declared for them in budgets — are refused before any memory is
// allocated. budgets maps image names to per-activation cycle budgets;
// nil declares no cycle constraints (the stack check still applies).
// The gate must already be armed (EnableVerifyGate).
func (c *Components) EnableBoundsAdmission(budgets map[string]uint64) {
	c.Gate.Bounds = true
	c.Gate.Budgets = budgets
}
