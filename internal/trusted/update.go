package trusted

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/hcrypto"
	"repro/internal/loader"
	"repro/internal/machine"
	"repro/internal/rtos"
	"repro/internal/sha1"
	"repro/internal/telf"
	"repro/internal/trace"
)

// Updater is the secure update service: the field counterpart of the
// secure loader. Installation proves *what* runs; update must also
// prove the package is *authentic* (signature), *fresh* (monotonic
// counter in sealed storage — rollback protection), and that a fault at
// any point of the swap leaves the device on the old, still-attestable
// version rather than bricked between two.
//
// The decision pipeline per request:
//
//	verify    manifest decode, HMAC signature, target-name match
//	counter   quarantine check + sealed monotonic counter compare
//	stage     load the new image into fresh memory (old task still runs)
//	stop      suspend the old task — downtime starts here
//	install   install/protect/measure/register the new task, suspended
//	commit    advance the sealed counter, resume new, unload old
//
// then a fresh attestation quote over the new identity, so a remote
// verifier observes the new measurement, never a stale one. A fault in
// any phase before commit unwinds via loader.Job.Abort and resumes the
// old task; the counter is only written in commit, so an unwound update
// never burns a version number.
//
// Every request ends in exactly one typed trace event: update-accepted,
// update-denied (with a reason attribute), or update-rolled-back (with
// the faulting phase) — the audit trail a verifier replays.
type Updater struct {
	k        *rtos.Kernel
	c        *Components
	ku       []byte
	provider string

	// FaultHook, when set, is called on entry to every phase and may
	// return an error to simulate a power failure or transient fault at
	// that exact point of the swap — the chaos harness's injection
	// point. A non-nil return aborts the update.
	FaultHook func(UpdatePhase) error

	// Obs, when set, receives the typed decision events.
	Obs trace.Sink

	counts UpdateCounts
}

// UpdatePhase names a point in the update pipeline, in execution order.
type UpdatePhase uint8

// Update pipeline phases.
const (
	UpdateVerify UpdatePhase = iota
	UpdateCounter
	UpdateStage
	UpdateStop
	UpdateInstall
	UpdateCommit

	numUpdatePhases
)

var updatePhaseNames = [numUpdatePhases]string{
	"verify", "counter", "stage", "stop", "install", "commit",
}

// String names the phase.
func (p UpdatePhase) String() string {
	if int(p) < len(updatePhaseNames) {
		return updatePhaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// UpdatePhases returns every pipeline phase in order — the chaos
// harness iterates it to inject a fault at each point of the swap.
func UpdatePhases() []UpdatePhase {
	out := make([]UpdatePhase, numUpdatePhases)
	for i := range out {
		out[i] = UpdatePhase(i)
	}
	return out
}

// Update errors. Denials (nothing changed) wrap ErrUpdateDenied;
// ErrUpdateAborted means a mid-swap fault was unwound and the old
// version runs on.
var (
	ErrUpdateDenied          = errors.New("trusted: update denied")
	ErrUpdateBadSignature    = fmt.Errorf("%w: bad signature", ErrUpdateDenied)
	ErrUpdateDowngrade       = fmt.Errorf("%w: version not fresher than sealed counter", ErrUpdateDenied)
	ErrUpdateCorrupt         = fmt.Errorf("%w: corrupt package", ErrUpdateDenied)
	ErrUpdateQuarantined     = fmt.Errorf("%w: identity quarantined", ErrUpdateDenied)
	ErrUpdateCounterTampered = fmt.Errorf("%w: version counter unreadable", ErrUpdateDenied)
	ErrUpdateBadTarget       = fmt.Errorf("%w: no such secure task", ErrUpdateDenied)
	ErrUpdateAborted         = errors.New("trusted: update aborted; previous version restored")
)

// Denial reason strings (trace attribute + counts key).
const (
	DenyBadSig        = "bad-sig"
	DenyDowngrade     = "downgrade"
	DenyCorrupt       = "corrupt"
	DenyQuarantined   = "quarantined"
	DenyCounterTamper = "counter-tamper"
	DenyBadTarget     = "bad-target"
)

// UpdateCounts is the updater's monotonic decision accounting.
type UpdateCounts struct {
	Accepted   uint64
	Denied     uint64
	RolledBack uint64
}

// Counts returns the decision counters since boot.
func (u *Updater) Counts() UpdateCounts { return u.counts }

// UpdateLabel is the KDF label for update-signing keys.
const UpdateLabel = "update"

// DeriveUpdateKey derives a provider's update-signing key Ku from the
// platform key — the same per-provider scheme as attestation keys, so
// each stakeholder signs (and can only update) its own tasks.
func DeriveUpdateKey(kp []byte, provider string) []byte {
	return hcrypto.DeriveKey(kp, UpdateLabel, []byte(provider))
}

// CounterSlot maps a task name to its sealed version-counter slot —
// deterministic, and far above the small slot numbers tasks use for
// their own data.
func CounterSlot(name string) uint32 {
	// FNV-1a over the name, folded into a dedicated slot window.
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return 0xFACE0000 | (h & 0xFFFF)
}

// UpdateReport describes an accepted update.
type UpdateReport struct {
	Task        string
	Old, New    rtos.TaskID
	OldIdentity sha1.Digest
	NewIdentity sha1.Digest
	FromVersion uint64 // sealed counter before the update (0 = none)
	ToVersion   uint64
	// DowntimeCycles is the window in which neither version was
	// schedulable: old suspend through new resume.
	DowntimeCycles uint64
	// Quote is the fresh post-update attestation over the new identity.
	Quote Quote
	Nonce uint64
}

// NewUpdater creates the update service for the given provider context,
// deriving Ku through the EA-MPU-guarded key path (the updater is a
// crypto-capable trusted component, like Storage and Attest).
func NewUpdater(k *rtos.Kernel, c *Components, provider string) (*Updater, error) {
	kp, err := readPlatformKey(k.M, StorageBase)
	if err != nil {
		return nil, err
	}
	k.M.Charge(machine.CostStorageKeyDerive)
	return &Updater{
		k:        k,
		c:        c,
		ku:       DeriveUpdateKey(kp, provider),
		provider: provider,
	}, nil
}

// emit reports one decision event.
func (u *Updater) emit(kind trace.Kind, subject string, attrs ...trace.Attr) {
	if u.Obs == nil {
		return
	}
	u.Obs.Emit(trace.Event{
		Cycle: u.k.M.Cycles(), Sub: trace.SubUpdate,
		Kind: kind, Subject: subject, Attrs: attrs,
	})
}

// deny accounts and reports a refusal; nothing has changed on-device.
func (u *Updater) deny(task, reason string, version uint64, err error) error {
	u.counts.Denied++
	u.emit(trace.KindUpdateDenied, task,
		trace.Str("reason", reason), trace.Num("version", version))
	return err
}

// rollBack accounts and reports an unwound mid-swap fault.
func (u *Updater) rollBack(task string, phase UpdatePhase, version uint64, cause error) error {
	u.counts.RolledBack++
	u.emit(trace.KindUpdateRolledBack, task,
		trace.Str("phase", phase.String()), trace.Num("version", version))
	return fmt.Errorf("%w (phase %s): %w", ErrUpdateAborted, phase, cause)
}

// enter runs the fault hook for a phase.
func (u *Updater) enter(phase UpdatePhase) error {
	if u.FaultHook == nil {
		return nil
	}
	return u.FaultHook(phase)
}

// Apply runs the full update pipeline: replace the secure task id with
// the signed package pkg, then re-attest the result under nonce. On a
// denial or an aborted swap the old task is untouched (and, if it was
// stopped, resumed) — Apply never leaves the device without a runnable
// version of the task.
func (u *Updater) Apply(id rtos.TaskID, pkg []byte, nonce uint64) (*UpdateReport, error) {
	m := u.k.M

	old, ok := u.k.Task(id)
	if !ok || old.Kind != rtos.KindSecure {
		return nil, u.deny("?", DenyBadTarget, 0, ErrUpdateBadTarget)
	}
	oldEntry, ok := u.c.RTM.LookupByTask(id)
	if !ok {
		return nil, u.deny(old.Name, DenyBadTarget, 0, ErrUpdateBadTarget)
	}
	name := old.Name

	// --- verify ---------------------------------------------------
	if err := u.enter(UpdateVerify); err != nil {
		return nil, u.rollBack(name, UpdateVerify, 0, err)
	}
	blocks := uint64(len(pkg)+sha1.BlockSize-1) / sha1.BlockSize
	if blocks == 0 {
		blocks = 1
	}
	m.Charge(machine.CostUpdateVerifyBase + blocks*machine.CostUpdateVerifyPerBlock)
	signed, err := telf.DecodeSigned(pkg)
	if err != nil {
		return nil, u.deny(name, DenyCorrupt, 0, fmt.Errorf("%w: %w", ErrUpdateCorrupt, err))
	}
	version := signed.Manifest.TaskVersion
	if err := signed.Verify(u.ku); err != nil {
		return nil, u.deny(name, DenyBadSig, version, fmt.Errorf("%w: %w", ErrUpdateBadSignature, err))
	}
	im := signed.Image
	if im.Name != name {
		return nil, u.deny(name, DenyBadTarget, version,
			fmt.Errorf("%w: package is for %q", ErrUpdateBadTarget, im.Name))
	}
	if u.c.Gate != nil {
		m.Charge(u.c.Gate.Cost(im))
		if _, err := u.c.Gate.Check(im); err != nil {
			return nil, u.deny(name, DenyCorrupt, version, fmt.Errorf("%w: %w", ErrUpdateCorrupt, err))
		}
	}
	newID := IdentityOfImage(im)

	// --- counter --------------------------------------------------
	if err := u.enter(UpdateCounter); err != nil {
		return nil, u.rollBack(name, UpdateCounter, version, err)
	}
	m.Charge(machine.CostUpdateCounter)
	if u.c.Attest.Quarantined(oldEntry.ID) || u.c.Attest.Quarantined(newID) {
		return nil, u.deny(name, DenyQuarantined, version, ErrUpdateQuarantined)
	}
	slot := CounterSlot(name)
	var current uint64
	switch cur, err := u.c.Storage.Load(old, slot); {
	case err == nil:
		if len(cur) != 8 {
			return nil, u.deny(name, DenyCounterTamper, version,
				fmt.Errorf("%w: %d-byte counter", ErrUpdateCounterTampered, len(cur)))
		}
		current = binary.LittleEndian.Uint64(cur)
	case errors.Is(err, ErrNoSlot):
		current = 0 // first update of this task
	default:
		// Tampered blob or identity mismatch: fail closed. Accepting
		// here would turn storage tampering into a downgrade vector.
		return nil, u.deny(name, DenyCounterTamper, version,
			fmt.Errorf("%w: %w", ErrUpdateCounterTampered, err))
	}
	if version <= current {
		return nil, u.deny(name, DenyDowngrade, version,
			fmt.Errorf("%w: have %d, offered %d", ErrUpdateDowngrade, current, version))
	}

	// --- stage (old task still running) ---------------------------
	if err := u.enter(UpdateStage); err != nil {
		return nil, u.rollBack(name, UpdateStage, version, err)
	}
	base, scanned, err := u.k.Alloc.Alloc(loader.PlacedSize(im))
	if err != nil {
		return nil, u.rollBack(name, UpdateStage, version, err)
	}
	m.Charge(machine.CostAllocBase + uint64(scanned)*machine.CostAllocPerRegion)
	job := loader.NewJob(m, im, base)
	cost, err := job.Run()
	m.Charge(cost)
	if err != nil {
		u.scrub(job, base)
		return nil, u.rollBack(name, UpdateStage, version, err)
	}

	// --- stop ------------------------------------------------------
	if err := u.enter(UpdateStop); err != nil {
		u.scrub(job, base)
		return nil, u.rollBack(name, UpdateStop, version, err)
	}
	if err := u.k.Suspend(id); err != nil {
		u.scrub(job, base)
		return nil, u.rollBack(name, UpdateStop, version, err)
	}
	downStart := m.Cycles()

	// --- install ---------------------------------------------------
	newTCB, err := u.install(UpdateInstall, name, old, job, base, version, newID)
	if err != nil {
		return nil, err
	}

	// --- commit ----------------------------------------------------
	if err := u.enter(UpdateCommit); err != nil {
		u.unwindInstalled(newTCB, id)
		return nil, u.rollBack(name, UpdateCommit, version, err)
	}
	m.Charge(machine.CostUpdateSwap)
	var counter [8]byte
	binary.LittleEndian.PutUint64(counter[:], version)
	if err := u.c.Storage.Store(newTCB, slot, counter[:]); err != nil {
		u.unwindInstalled(newTCB, id)
		return nil, u.rollBack(name, UpdateCommit, version, err)
	}
	if err := u.k.Resume(newTCB.ID); err != nil {
		u.unwindInstalled(newTCB, id)
		return nil, u.rollBack(name, UpdateCommit, version, err)
	}
	downtime := m.Cycles() - downStart
	u.k.Unload(id)

	// --- re-attest -------------------------------------------------
	// The verifier must observe the *new* measurement: quote it now,
	// under a fresh nonce, as part of the update itself.
	quote, err := u.c.Attest.QuoteTask(newTCB.ID, nonce)
	u.counts.Accepted++
	u.emit(trace.KindUpdateAccepted, name,
		trace.Num("from", current), trace.Num("to", version),
		trace.Num("downtime", downtime), trace.Num("new-task", uint64(newTCB.ID)))
	report := &UpdateReport{
		Task:           name,
		Old:            id,
		New:            newTCB.ID,
		OldIdentity:    oldEntry.ID,
		NewIdentity:    newID,
		FromVersion:    current,
		ToVersion:      version,
		DowntimeCycles: downtime,
		Quote:          quote,
		Nonce:          nonce,
	}
	if err != nil {
		return report, fmt.Errorf("trusted: update committed but re-attestation failed: %w", err)
	}
	return report, nil
}

// install runs the install phase: bring the staged image up as a
// suspended, protected, measured, registered task. Any fault scrubs the
// staged memory and resumes the old task.
func (u *Updater) install(phase UpdatePhase, name string, old *rtos.TCB, job *loader.Job, base uint32, version uint64, newID sha1.Digest) (*rtos.TCB, error) {
	if err := u.enter(phase); err != nil {
		u.scrub(job, base)
		u.k.Resume(old.ID)
		return nil, u.rollBack(name, phase, version, err)
	}
	newTCB, err := u.k.InstallTaskSuspended(name, rtos.KindSecure, old.Priority, job.Placement())
	if err != nil {
		u.scrub(job, base)
		u.k.Resume(old.ID)
		return nil, u.rollBack(name, phase, version, err)
	}
	if _, err := u.c.Driver.ProtectTask(newTCB); err != nil {
		u.unwindInstalled(newTCB, old.ID)
		return nil, u.rollBack(name, phase, version, err)
	}
	mjob := u.c.RTM.NewMeasureJob(job.Placement().Image, base, nil)
	mcost, err := mjob.Run()
	u.k.M.Charge(mcost)
	if err != nil {
		u.unwindInstalled(newTCB, old.ID)
		return nil, u.rollBack(name, phase, version, err)
	}
	measured, _ := mjob.Identity()
	if measured != newID {
		// The staged bytes do not hash to the verified image — RAM was
		// perturbed between stage and measure.
		u.unwindInstalled(newTCB, old.ID)
		return nil, u.rollBack(name, phase, version,
			fmt.Errorf("staged image measurement mismatch"))
	}
	u.c.RTM.Register(newTCB, job.Placement().Image, job.Placement(), measured)
	return newTCB, nil
}

// scrub unwinds a staged-but-not-installed image: revert the load
// (which also invalidates any compiled code over the extent) and free
// the memory.
func (u *Updater) scrub(job *loader.Job, base uint32) {
	if job != nil && !job.Aborted() {
		cost, _ := job.Abort()
		u.k.M.Charge(cost)
	}
	u.k.Alloc.Free(base)
}

// unwindInstalled removes a fully or partially installed new task and
// resumes the old one. Unload funnels through the exit hooks, so the
// EA-MPU rules, registry entry and memory all go with it.
func (u *Updater) unwindInstalled(newTCB *rtos.TCB, old rtos.TaskID) {
	u.k.Unload(newTCB.ID)
	u.k.Resume(old)
}
