package trusted

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/loader"
	"repro/internal/machine"
	"repro/internal/rtos"
	"repro/internal/sha1"
	"repro/internal/sverify"
	"repro/internal/telf"
)

// RTM is the Root of Trust for Measurement: it computes each task's
// identity idt — the hash digest of the task's code, static data and
// layout — and maintains "a list of the identities of all loaded tasks
// and their memory addresses" (§4) that the IPC proxy resolves
// receivers through.
//
// Measurement is *interruptible*: it proceeds one SHA-1 block per
// quantum, and the hash state survives pre-emption (requirement for
// real-time compliance, §3). Because a loaded task has been relocated,
// the RTM reverts the relocation fixups on each block before hashing,
// yielding a position-independent measurement: the same binary loaded
// at any address produces the same idt.
type RTM struct {
	m *machine.Machine

	byTrunc map[uint64]*RegistryEntry
	byTask  map[rtos.TaskID]*RegistryEntry

	jobs []*MeasureJob

	measured uint64 // completed measurements
}

// RegistryEntry records a loaded task's identity and location.
type RegistryEntry struct {
	Task      *rtos.TCB
	ID        sha1.Digest
	TruncID   uint64
	Placement loader.Placement
	Image     *telf.Image

	// Bounds carries the task's certified static resource bounds when
	// the verification gate ran at load time (nil otherwise). The
	// analyzer cross-checks measured bursts against it.
	Bounds *sverify.Bounds
}

// NewRTM creates the RTM.
func NewRTM(m *machine.Machine) *RTM {
	return &RTM{
		m:       m,
		byTrunc: make(map[uint64]*RegistryEntry),
		byTask:  make(map[rtos.TaskID]*RegistryEntry),
	}
}

// RTM errors.
var (
	ErrUnknownIdentity = errors.New("trusted: identity not in RTM registry")
	ErrNotMeasured     = errors.New("trusted: task has no measured identity")
)

// headerBytes encodes the position-independent layout header that is
// hashed before the sections: entry offset and section sizes. Including
// the layout binds the identity to the "initial stack layout" exactly
// as §4 describes.
func headerBytes(im *telf.Image) []byte {
	var h [20]byte
	binary.LittleEndian.PutUint32(h[0:], im.Entry)
	binary.LittleEndian.PutUint32(h[4:], uint32(len(im.Text)))
	binary.LittleEndian.PutUint32(h[8:], uint32(len(im.Data)))
	binary.LittleEndian.PutUint32(h[12:], im.BSSSize)
	binary.LittleEndian.PutUint32(h[16:], im.StackSize)
	return h[:]
}

// IdentityOfImage computes the expected identity of an image without
// loading it — what a remote verifier derives from the published binary
// to check attestation reports against.
func IdentityOfImage(im *telf.Image) sha1.Digest {
	s := sha1.New()
	s.Write(headerBytes(im))
	s.Write(im.Text)
	s.Write(im.Data)
	return s.Sum()
}

// MeasureJob is an in-progress, interruptible measurement of a loaded
// task. Each Step hashes at most one 64-byte block.
type MeasureJob struct {
	rtm   *RTM
	im    *telf.Image
	base  uint32
	state sha1.State
	off   uint32 // next byte offset into text‖data
	limit uint32
	begun bool
	done  bool
	id    sha1.Digest
	// Interruptions counts how many distinct Step calls advanced the
	// job — the evaluation's "number of interruptions of the RTM task".
	Interruptions uint64
	// reverted counts relocation fixups reverted while hashing.
	reverted int
	onDone   func(sha1.Digest)
	// buf is the scratch block readBlock fills; reused across Steps so
	// hashing a large image does not allocate per block.
	buf [sha1.BlockSize]byte
}

// NewMeasureJob prepares the measurement of the image loaded at base.
func (r *RTM) NewMeasureJob(im *telf.Image, base uint32, onDone func(sha1.Digest)) *MeasureJob {
	return &MeasureJob{
		rtm:   r,
		im:    im,
		base:  base,
		state: sha1.New(),
		limit: im.MeasuredSize(),
		onDone: func(d sha1.Digest) {
			r.measured++
			if onDone != nil {
				onDone(d)
			}
		},
	}
}

// Done reports completion.
func (j *MeasureJob) Done() bool { return j.done }

// Identity returns the digest after completion.
func (j *MeasureJob) Identity() (sha1.Digest, error) {
	if !j.done {
		return sha1.Digest{}, ErrNotMeasured
	}
	return j.id, nil
}

// Reverted returns how many fixups were reverted during hashing.
func (j *MeasureJob) Reverted() int { return j.reverted }

// Step advances the measurement by at most budget cycles and returns
// the cycles consumed. The measured task must be prevented from
// executing while the job runs (the loader keeps it unscheduled), which
// is what makes idt reliable despite interruptions (§3).
func (j *MeasureJob) Step(budget uint64) (used uint64, err error) {
	if j.done {
		return 0, nil
	}
	j.Interruptions++
	if !j.begun {
		j.begun = true
		// Hash state init + layout header + reversal bookkeeping.
		j.state.Write(headerBytes(j.im))
		used += machine.CostMeasureInit + machine.CostRevertFixed
		if used >= budget {
			return used, nil
		}
	}
	for j.off < j.limit {
		n := uint32(sha1.BlockSize)
		if j.off+n > j.limit {
			n = j.limit - j.off
		}
		block, rerr := j.readBlock(j.off, n)
		if rerr != nil {
			return used, rerr
		}
		nrev := loader.RevertInBlock(j.im, j.base, j.off, block)
		j.reverted += nrev
		if n == sha1.BlockSize && j.state.BufferedBytes() == 0 {
			j.state.WriteBlock(block)
		} else {
			j.state.Write(block)
		}
		j.off += n
		used += machine.CostMeasurePerBlock + uint64(nrev)*machine.CostRevertPerAddr
		if used >= budget {
			return used, nil
		}
	}
	j.id = j.state.Sum()
	j.done = true
	j.onDone(j.id)
	return used, nil
}

// Run drives the job to completion and returns the total cost.
func (j *MeasureJob) Run() (uint64, error) {
	var total uint64
	for !j.done {
		used, err := j.Step(1 << 30)
		total += used
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// readBlock reads n bytes of task memory through the checked bus in the
// RTM's protection context (its boot grant covers task regions).
func (j *MeasureJob) readBlock(off, n uint32) ([]byte, error) {
	block := j.buf[:n]
	var err error
	j.rtm.m.WithExecContext(RTMBase, func() {
		addr := j.base + off
		var i uint32
		for ; i+4 <= n; i += 4 {
			var v uint32
			v, err = j.rtm.m.Read32(addr + i)
			if err != nil {
				return
			}
			binary.LittleEndian.PutUint32(block[i:], v)
		}
		for ; i < n; i++ {
			var b byte
			b, err = j.rtm.m.Read8(addr + i)
			if err != nil {
				return
			}
			block[i] = b
		}
	})
	if err != nil {
		return nil, fmt.Errorf("trusted: rtm read at +%#x: %w", off, err)
	}
	return block, nil
}

// Register records a measured task in the identity registry. Only the
// RTM can modify identities — callers are the trusted loader path.
func (r *RTM) Register(t *rtos.TCB, im *telf.Image, p loader.Placement, id sha1.Digest) *RegistryEntry {
	e := &RegistryEntry{
		Task:      t,
		ID:        id,
		TruncID:   id.TruncatedID(),
		Placement: p,
		Image:     im,
	}
	r.byTrunc[e.TruncID] = e
	r.byTask[t.ID] = e
	r.m.Charge(machine.CostRegistryUpdate)
	return e
}

// Unregister removes a task from the registry (unload path). If
// another loaded task shares the same identity (two instances of the
// same binary), the truncated-identity index falls back to it, so IPC
// to that identity keeps working.
func (r *RTM) Unregister(t *rtos.TCB) {
	e, ok := r.byTask[t.ID]
	if !ok {
		return
	}
	delete(r.byTask, t.ID)
	if r.byTrunc[e.TruncID] == e {
		delete(r.byTrunc, e.TruncID)
		// Deterministic fallback: the surviving instance with the
		// lowest task ID becomes the canonical receiver.
		var best *RegistryEntry
		for _, other := range r.byTask {
			if other.TruncID != e.TruncID {
				continue
			}
			if best == nil || other.Task.ID < best.Task.ID {
				best = other
			}
		}
		if best != nil {
			r.byTrunc[e.TruncID] = best
		}
	}
	r.m.Charge(machine.CostRegistryUpdate)
}

// LookupByTruncID resolves a truncated identity to a registry entry,
// also returning how many entries were scanned (the IPC proxy charges a
// per-entry lookup cost; the registry is a list on the prototype).
func (r *RTM) LookupByTruncID(id uint64) (*RegistryEntry, int, error) {
	scanned := len(r.byTask)
	if e, ok := r.byTrunc[id]; ok {
		return e, scanned, nil
	}
	return nil, scanned, fmt.Errorf("%w: %#x", ErrUnknownIdentity, id)
}

// LookupByTask resolves a TCB to its registry entry.
func (r *RTM) LookupByTask(id rtos.TaskID) (*RegistryEntry, bool) {
	e, ok := r.byTask[id]
	return e, ok
}

// Entries returns the number of registered tasks.
func (r *RTM) Entries() int { return len(r.byTask) }

// Measured returns how many measurements have completed.
func (r *RTM) Measured() uint64 { return r.measured }
