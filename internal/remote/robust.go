package remote

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// Robustness layer: deadlines on every exchange, bounded retry with
// exponential backoff on the verifier side (Client.AttestRetry), and a
// per-connection error budget on the device side (Server.ServeConn). A
// flaky or hostile network can delay an attestation verdict but can
// never hang either endpoint or wedge the server on one bad peer.

// DefaultIOTimeout bounds one exchange's network I/O when the caller
// does not specify a deadline.
const DefaultIOTimeout = 2 * time.Second

// Robustness errors.
var (
	// ErrTimeout wraps network timeouts so callers can match them
	// without digging for net.Error.
	ErrTimeout = errors.New("remote: i/o timeout")
	// ErrErrorBudget means a connection produced more protocol errors
	// than the server tolerates and was dropped.
	ErrErrorBudget = errors.New("remote: connection error budget exhausted")
	// ErrRetryBudget means AttestRetry's wall budget would be exceeded
	// by the next backoff sleep, so the loop gave up before using its
	// full attempt count. The last transport error is wrapped alongside.
	ErrRetryBudget = errors.New("remote: retry wall budget exhausted")
)

// wrapTimeout rewraps network timeout errors in ErrTimeout, leaving
// everything else (including io.EOF) untouched.
func wrapTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}

// withDeadline runs f with an absolute I/O deadline of d from now on
// conn (cleared afterwards), mapping timeouts to ErrTimeout.
func withDeadline(conn net.Conn, d time.Duration, f func() error) error {
	if d > 0 {
		// Real socket deadlines live in wall-clock time, not simulated
		// cycles. //tytan:allow hosttime
		conn.SetDeadline(time.Now().Add(d))
		defer conn.SetDeadline(time.Time{})
	}
	return wrapTimeout(f())
}
