package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/sha1"
	"repro/internal/trusted"
)

// Robustness layer: deadlines on every exchange, bounded retry with
// exponential backoff on the verifier side, and a per-connection error
// budget on the device side. A flaky or hostile network can delay an
// attestation verdict but can never hang either endpoint or wedge the
// server on one bad peer.

// DefaultIOTimeout bounds one exchange's network I/O when the caller
// does not specify a deadline.
const DefaultIOTimeout = 2 * time.Second

// Robustness errors.
var (
	// ErrTimeout wraps network timeouts so callers can match them
	// without digging for net.Error.
	ErrTimeout = errors.New("remote: i/o timeout")
	// ErrErrorBudget means a connection produced more protocol errors
	// than the server tolerates and was dropped.
	ErrErrorBudget = errors.New("remote: connection error budget exhausted")
	// ErrRetryBudget means AttestRetry's wall budget would be exceeded
	// by the next backoff sleep, so the loop gave up before using its
	// full attempt count. The last transport error is wrapped alongside.
	ErrRetryBudget = errors.New("remote: retry wall budget exhausted")
)

// wrapTimeout rewraps network timeout errors in ErrTimeout, leaving
// everything else (including io.EOF) untouched.
func wrapTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}

// withDeadline runs f with an absolute I/O deadline of d from now on
// conn (cleared afterwards), mapping timeouts to ErrTimeout.
func withDeadline(conn net.Conn, d time.Duration, f func() error) error {
	if d > 0 {
		// Real socket deadlines live in wall-clock time, not simulated
		// cycles. //tytan:allow hosttime
		conn.SetDeadline(time.Now().Add(d))
		defer conn.SetDeadline(time.Time{})
	}
	return wrapTimeout(f())
}

// ServeConfig parameterizes persistent-connection serving.
type ServeConfig struct {
	// Timeout bounds each exchange's I/O (0 = DefaultIOTimeout).
	Timeout time.Duration
	// ErrorBudget is how many protocol errors (malformed frames, bad
	// challenges) one connection may produce before it is dropped
	// (0 = 3).
	ErrorBudget int
	// Stats, when non-nil, accumulates exchange/error accounting.
	Stats *ServeStats
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Timeout == 0 {
		c.Timeout = DefaultIOTimeout
	}
	if c.ErrorBudget == 0 {
		c.ErrorBudget = 3
	}
	return c
}

// ServeConn answers challenges on a persistent connection until the
// peer closes it, an exchange times out, a transport error occurs, or
// the connection exhausts its protocol-error budget. It returns nil on
// clean shutdown (EOF).
func ServeConn(conn net.Conn, att Attestor, cfg ServeConfig) error {
	cfg = cfg.withDefaults()
	protoErrs := 0
	for {
		err := ServeOneTimeout(conn, att, cfg.Timeout)
		switch {
		case err == nil:
			if cfg.Stats != nil {
				atomic.AddUint64(&cfg.Stats.exchanges, 1)
			}
			continue
		case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
			return nil
		case errors.Is(err, ErrTimeout):
			if cfg.Stats != nil {
				atomic.AddUint64(&cfg.Stats.timeouts, 1)
			}
			return err
		case errors.Is(err, ErrBadMessage), errors.Is(err, ErrFrameTooLarge):
			protoErrs++
			if cfg.Stats != nil {
				atomic.AddUint64(&cfg.Stats.frameErrors, 1)
			}
			if protoErrs >= cfg.ErrorBudget {
				if cfg.Stats != nil {
					atomic.AddUint64(&cfg.Stats.drops, 1)
				}
				return fmt.Errorf("%w: %d protocol errors", ErrErrorBudget, protoErrs)
			}
		default:
			return err
		}
	}
}

// RetryConfig parameterizes the verifier's bounded retry.
type RetryConfig struct {
	// Attempts is the total number of tries (0 = 3).
	Attempts int
	// Backoff is the delay before the second attempt; it doubles per
	// attempt (0 = 10ms).
	Backoff time.Duration
	// Timeout bounds each attempt's I/O (0 = DefaultIOTimeout).
	Timeout time.Duration
	// WallBudget bounds the total time the loop may spend in backoff
	// sleeps across all attempts (0 = unbounded). The budget is
	// accounted from the backoff schedule itself, never from a host
	// clock read, so retry behaviour stays deterministic under test
	// fakes and inside the simulator's determinism vet.
	WallBudget time.Duration
	// Sleep is injectable for tests (nil = time.Sleep).
	Sleep func(time.Duration)
	// Stats, when non-nil, accumulates retry accounting.
	Stats *RetryStats
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Attempts == 0 {
		c.Attempts = 3
	}
	if c.Backoff == 0 {
		c.Backoff = 10 * time.Millisecond
	}
	if c.Timeout == 0 {
		c.Timeout = DefaultIOTimeout
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// AttestRetry runs the verifier side with bounded retry: each attempt
// dials a fresh connection, uses a fresh nonce (base nonce + attempt
// index, so a replayed or delayed quote from a failed attempt can never
// satisfy a later one), and bounds its I/O with a deadline. Transport
// and protocol failures are retried with exponential backoff; an
// authoritative device answer — a verified quote or an explicit device
// error (ErrRemote) — ends the loop immediately. When cfg.WallBudget is
// set, the loop additionally refuses to start a backoff sleep that
// would push the accumulated backoff past the budget, failing with
// ErrRetryBudget instead. Returns the quote, the number of attempts
// used, and the final error.
func AttestRetry(dial func() (net.Conn, error), v *trusted.Verifier, provider string, expected sha1.Digest, nonce uint64, cfg RetryConfig) (trusted.Quote, int, error) {
	cfg = cfg.withDefaults()
	var lastErr error
	var slept time.Duration
	backoff := cfg.Backoff
	for attempt := 0; attempt < cfg.Attempts; attempt++ {
		if attempt > 0 {
			if cfg.WallBudget > 0 && slept+backoff > cfg.WallBudget {
				err := fmt.Errorf("%w after %d of %d attempts (%v backoff spent, %v budget): %w",
					ErrRetryBudget, attempt, cfg.Attempts, slept, cfg.WallBudget, lastErr)
				cfg.Stats.record(attempt, err)
				return trusted.Quote{}, attempt, err
			}
			cfg.Sleep(backoff)
			slept += backoff
			backoff *= 2
		}
		conn, err := dial()
		if err != nil {
			lastErr = err
			continue
		}
		q, err := AttestTimeout(conn, v, provider, expected, nonce+uint64(attempt), cfg.Timeout)
		conn.Close()
		if err == nil {
			cfg.Stats.record(attempt+1, nil)
			return q, attempt + 1, nil
		}
		lastErr = err
		if errors.Is(err, ErrRemote) {
			// The device answered: the task is not attestable. Retrying
			// cannot change an authoritative refusal.
			cfg.Stats.record(attempt+1, err)
			return trusted.Quote{}, attempt + 1, err
		}
	}
	err := fmt.Errorf("remote: attestation failed after %d attempts: %w", cfg.Attempts, lastErr)
	cfg.Stats.record(cfg.Attempts, err)
	return trusted.Quote{}, cfg.Attempts, err
}

// ServeOneTimeout is ServeOne with an explicit per-exchange deadline.
func ServeOneTimeout(conn net.Conn, att Attestor, d time.Duration) error {
	return withDeadline(conn, d, func() error { return serveExchange(conn, att) })
}

// AttestTimeout is Attest with an explicit per-exchange deadline.
func AttestTimeout(conn net.Conn, v *trusted.Verifier, provider string, expected sha1.Digest, nonce uint64, d time.Duration) (trusted.Quote, error) {
	var q trusted.Quote
	err := withDeadline(conn, d, func() error {
		var aerr error
		q, aerr = attestExchange(conn, v, provider, expected, nonce)
		return aerr
	})
	return q, err
}
