// Package remote implements the remote attestation protocol between a
// TyTAN device and an off-device verifier over any net.Conn — the
// "prove the integrity of its software state to another device" half
// of §3's attestation story, as an actual wire protocol rather than an
// in-process call.
//
// # Protocol
//
// All messages are length-prefixed frames: a 4-byte little-endian
// length followed by a 1-byte type and the payload.
//
//	verifier → device  MsgChallenge: provider string, truncated task
//	                   identity, 8-byte nonce
//	device  → verifier MsgQuote:     wire-format quote (see
//	                   trusted.Quote.Marshal)
//	device  → verifier MsgError:     UTF-8 reason (unknown identity, …)
//
// The nonce is chosen by the verifier per challenge; a replayed quote
// fails nonce verification. The channel needs no confidentiality: a
// quote discloses only the (public) task identity, and its MAC can only
// be produced by the device's Remote Attest component.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"repro/internal/sha1"
	"repro/internal/trusted"
)

// Message types.
const (
	MsgChallenge byte = 1
	MsgQuote     byte = 2
	MsgError     byte = 3
)

// maxFrame bounds frame sizes against malformed peers.
const maxFrame = 4096

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("remote: frame exceeds limit")
	ErrBadMessage    = errors.New("remote: malformed message")
	ErrRemote        = errors.New("remote: device reported error")
)

// writeFrame sends one framed message.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one framed message.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Challenge is a verifier's attestation request.
type Challenge struct {
	// Provider selects the attestation key (multi-stakeholder support).
	Provider string
	// TruncID identifies the task to attest (the identity the verifier
	// derived from the published binary, truncated like the registry's
	// index).
	TruncID uint64
	// Nonce is the verifier's freshness challenge.
	Nonce uint64
}

// marshalChallenge encodes a challenge payload.
func marshalChallenge(c Challenge) ([]byte, error) {
	if len(c.Provider) > 255 {
		return nil, fmt.Errorf("%w: provider name too long", ErrBadMessage)
	}
	out := make([]byte, 0, 1+len(c.Provider)+16)
	out = append(out, byte(len(c.Provider)))
	out = append(out, c.Provider...)
	out = binary.LittleEndian.AppendUint64(out, c.TruncID)
	out = binary.LittleEndian.AppendUint64(out, c.Nonce)
	return out, nil
}

// unmarshalChallenge decodes a challenge payload.
func unmarshalChallenge(b []byte) (Challenge, error) {
	if len(b) < 1 {
		return Challenge{}, ErrBadMessage
	}
	pl := int(b[0])
	if len(b) != 1+pl+16 {
		return Challenge{}, ErrBadMessage
	}
	return Challenge{
		Provider: string(b[1 : 1+pl]),
		TruncID:  binary.LittleEndian.Uint64(b[1+pl:]),
		Nonce:    binary.LittleEndian.Uint64(b[1+pl+8:]),
	}, nil
}

// Attestor is the device-side capability the server needs: resolve a
// truncated identity and quote the task under a provider key.
// *core.Platform satisfies it through the thin adapter below;
// the indirection keeps this package free of a core dependency.
type Attestor interface {
	// QuoteByTruncID quotes the loaded task with the given truncated
	// identity under the provider's attestation key.
	QuoteByTruncID(provider string, trunc uint64, nonce uint64) (trusted.Quote, error)
}

// ComponentsAttestor adapts the trusted components to the Attestor
// interface.
type ComponentsAttestor struct {
	C *trusted.Components
}

// QuoteByTruncID implements Attestor.
func (a ComponentsAttestor) QuoteByTruncID(provider string, trunc, nonce uint64) (trusted.Quote, error) {
	e, _, err := a.C.RTM.LookupByTruncID(trunc)
	if err != nil {
		return trusted.Quote{}, err
	}
	return a.C.Attest.QuoteTaskForProvider(provider, e.Task.ID, nonce)
}

// ServeOne handles a single challenge/response exchange on conn with
// the default I/O deadline. The device side calls it per connection;
// persistent connections use ServeConn.
func ServeOne(conn net.Conn, att Attestor) error {
	return ServeOneTimeout(conn, att, DefaultIOTimeout)
}

// serveExchange is one challenge/response exchange (no deadline
// handling; the callers wrap it).
func serveExchange(conn net.Conn, att Attestor) error {
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != MsgChallenge {
		writeFrame(conn, MsgError, []byte("expected challenge"))
		return fmt.Errorf("%w: type %d", ErrBadMessage, typ)
	}
	ch, err := unmarshalChallenge(payload)
	if err != nil {
		writeFrame(conn, MsgError, []byte("bad challenge"))
		return err
	}
	q, err := att.QuoteByTruncID(ch.Provider, ch.TruncID, ch.Nonce)
	if err != nil {
		writeFrame(conn, MsgError, []byte(err.Error()))
		return nil // the protocol handled it; not a server failure
	}
	return writeFrame(conn, MsgQuote, q.Marshal())
}

// Serve accepts connections on l and answers one challenge per
// connection until Accept fails (listener closed). A misbehaving
// connection — malformed frames, stalls past the deadline — is dropped
// and serving continues; one bad peer cannot take the attestation
// service down for everyone else.
func Serve(l net.Listener, att Attestor) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		ServeOne(conn, att)
		conn.Close()
	}
}

// Attest runs the verifier side of one exchange on conn with the
// default I/O deadline: send the challenge, receive the quote, verify
// it against the expected full identity using the given verifier. It
// returns the verified quote. Flaky-network callers use AttestRetry.
func Attest(conn net.Conn, v *trusted.Verifier, provider string, expected sha1.Digest, nonce uint64) (trusted.Quote, error) {
	return AttestTimeout(conn, v, provider, expected, nonce, DefaultIOTimeout)
}

// attestExchange is the verifier side of one exchange (no deadline
// handling; the callers wrap it).
func attestExchange(conn net.Conn, v *trusted.Verifier, provider string, expected sha1.Digest, nonce uint64) (trusted.Quote, error) {
	payload, err := marshalChallenge(Challenge{
		Provider: provider,
		TruncID:  expected.TruncatedID(),
		Nonce:    nonce,
	})
	if err != nil {
		return trusted.Quote{}, err
	}
	if err := writeFrame(conn, MsgChallenge, payload); err != nil {
		return trusted.Quote{}, err
	}
	typ, resp, err := readFrame(conn)
	if err != nil {
		return trusted.Quote{}, err
	}
	switch typ {
	case MsgQuote:
		q, err := trusted.UnmarshalQuote(resp)
		if err != nil {
			return trusted.Quote{}, err
		}
		if err := v.Verify(q, expected, nonce); err != nil {
			return trusted.Quote{}, err
		}
		return q, nil
	case MsgError:
		return trusted.Quote{}, fmt.Errorf("%w: %s", ErrRemote, resp)
	default:
		return trusted.Quote{}, fmt.Errorf("%w: type %d", ErrBadMessage, typ)
	}
}
