// Package remote implements the remote attestation protocol between a
// TyTAN device and an off-device verifier over any net.Conn — the
// "prove the integrity of its software state to another device" half
// of §3's attestation story, as an actual wire protocol rather than an
// in-process call.
//
// # Protocol
//
// All messages are length-prefixed frames: a 4-byte little-endian
// length followed by a 1-byte type and the payload.
//
//	verifier → device  MsgChallenge: provider string, truncated task
//	                   identity, 8-byte nonce
//	device  → verifier MsgQuote:     wire-format quote (see
//	                   trusted.Quote.Marshal)
//	device  → verifier MsgError:     UTF-8 reason (unknown identity,
//	                   quarantined, …)
//	device  → verifier MsgHello:     device name, provider, truncated
//	                   identity — opens a device-initiated session
//	verifier → device  MsgVerdict:   1-byte pass/fail plus UTF-8 reason —
//	                   closes a device-initiated session
//
// Verifier-initiated attestation (the classic shape) starts with
// MsgChallenge. Device-initiated attestation — the fleet shape, where
// thousands of devices dial one verifier plane — starts with MsgHello;
// the verifier answers with MsgChallenge (proceed) or MsgError
// (refused: unknown device, quarantined, …), and after the quote closes
// the session with MsgVerdict. The verdict makes the session
// synchronous end to end: when AttestTo returns, the plane has fully
// recorded the outcome, so a device's next session always sees its
// up-to-date standing.
//
// The nonce is chosen by the verifier per challenge; a replayed quote
// fails nonce verification. The channel needs no confidentiality: a
// quote discloses only the (public) task identity, and its MAC can only
// be produced by the device's Remote Attest component.
//
// # API
//
// The package surface is two types. Server is the device side: it owns
// an Attestor and answers challenges (ServeOne, ServeConn, Serve) or
// initiates a session toward a verifier plane (AttestTo). Client is the
// verifier side: it owns a trusted.Verifier and drives exchanges
// (Attest, AttestRetry) or answers device-initiated sessions
// (AwaitHello, Challenge, Refuse). Deadlines, retry policy, frame
// limits and stats all live in ServerOptions/ClientOptions.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/trusted"
)

// Message types.
const (
	MsgChallenge byte = 1
	MsgQuote     byte = 2
	MsgError     byte = 3
	MsgHello     byte = 4
	MsgVerdict   byte = 5
)

// DefaultMaxFrame bounds frame sizes against malformed peers when the
// options do not say otherwise. Fleet-sized quotes and future
// certificate chains can raise the limit per Server/Client instead of
// editing the package.
const DefaultMaxFrame = 4096

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("remote: frame exceeds limit")
	ErrBadMessage    = errors.New("remote: malformed message")
	ErrRemote        = errors.New("remote: device reported error")
	// ErrRefused is the device-side view of a verifier plane answering a
	// hello with MsgError: the plane will not attest this device
	// (unknown, quarantined, …).
	ErrRefused = errors.New("remote: verifier refused attestation")
	// ErrDenied is the device-side view of a failed MsgVerdict: the
	// session completed but the plane's appraisal rejected the quote.
	ErrDenied = errors.New("remote: verifier denied attestation")
)

// writeFrame sends one framed message no larger than max bytes
// (type byte included; max <= 0 means DefaultMaxFrame).
func writeFrame(w io.Writer, max int, typ byte, payload []byte) error {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	if len(payload)+1 > max {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one framed message, rejecting frames larger than
// max bytes before allocating (max <= 0 means DefaultMaxFrame).
func readFrame(r io.Reader, max int) (typ byte, payload []byte, err error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > uint32(max) {
		return 0, nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Challenge is a verifier's attestation request.
type Challenge struct {
	// Provider selects the attestation key (multi-stakeholder support).
	Provider string
	// TruncID identifies the task to attest (the identity the verifier
	// derived from the published binary, truncated like the registry's
	// index).
	TruncID uint64
	// Nonce is the verifier's freshness challenge.
	Nonce uint64
}

// marshalChallenge encodes a challenge payload.
func marshalChallenge(c Challenge) ([]byte, error) {
	if len(c.Provider) > 255 {
		return nil, fmt.Errorf("%w: provider name too long", ErrBadMessage)
	}
	out := make([]byte, 0, 1+len(c.Provider)+16)
	out = append(out, byte(len(c.Provider)))
	out = append(out, c.Provider...)
	out = binary.LittleEndian.AppendUint64(out, c.TruncID)
	out = binary.LittleEndian.AppendUint64(out, c.Nonce)
	return out, nil
}

// unmarshalChallenge decodes a challenge payload.
func unmarshalChallenge(b []byte) (Challenge, error) {
	if len(b) < 1 {
		return Challenge{}, ErrBadMessage
	}
	pl := int(b[0])
	if len(b) != 1+pl+16 {
		return Challenge{}, ErrBadMessage
	}
	return Challenge{
		Provider: string(b[1 : 1+pl]),
		TruncID:  binary.LittleEndian.Uint64(b[1+pl:]),
		Nonce:    binary.LittleEndian.Uint64(b[1+pl+8:]),
	}, nil
}

// Hello opens a device-initiated attestation session: the device names
// itself, the provider whose key it will quote under, and the truncated
// identity of the task it offers to attest. The verifier plane answers
// with a challenge (proceed) or an error frame (refused).
type Hello struct {
	// Device is the fleet-unique device name.
	Device string
	// Provider selects the attestation key the device will quote under.
	Provider string
	// TruncID is the truncated identity of the task the device offers.
	TruncID uint64
	// Session is the device's 0-based session ordinal — its count of
	// previously initiated sessions. Together with Device it forms the
	// fleet-wide session correlation key: the plane's verdict events
	// echo it, so device-side and plane-side telemetry for the same
	// session can be joined across the two time domains. The
	// verdict-before-next-hello edge makes the ordinal totally ordered
	// per device.
	Session uint64
}

// marshalHello encodes a hello payload.
func marshalHello(h Hello) ([]byte, error) {
	if len(h.Device) > 255 || len(h.Provider) > 255 {
		return nil, fmt.Errorf("%w: hello field too long", ErrBadMessage)
	}
	out := make([]byte, 0, 2+len(h.Device)+len(h.Provider)+16)
	out = append(out, byte(len(h.Device)))
	out = append(out, h.Device...)
	out = append(out, byte(len(h.Provider)))
	out = append(out, h.Provider...)
	out = binary.LittleEndian.AppendUint64(out, h.TruncID)
	out = binary.LittleEndian.AppendUint64(out, h.Session)
	return out, nil
}

// unmarshalHello decodes a hello payload.
func unmarshalHello(b []byte) (Hello, error) {
	if len(b) < 1 {
		return Hello{}, ErrBadMessage
	}
	dl := int(b[0])
	if len(b) < 1+dl+1 {
		return Hello{}, ErrBadMessage
	}
	pl := int(b[1+dl])
	if len(b) != 1+dl+1+pl+16 {
		return Hello{}, ErrBadMessage
	}
	return Hello{
		Device:   string(b[1 : 1+dl]),
		Provider: string(b[2+dl : 2+dl+pl]),
		TruncID:  binary.LittleEndian.Uint64(b[2+dl+pl:]),
		Session:  binary.LittleEndian.Uint64(b[2+dl+pl+8:]),
	}, nil
}

// Attestor is the device-side capability the server needs: resolve a
// truncated identity and quote the task under a provider key.
// *core.Platform satisfies it through the thin adapter below;
// the indirection keeps this package free of a core dependency.
type Attestor interface {
	// QuoteByTruncID quotes the loaded task with the given truncated
	// identity under the provider's attestation key.
	QuoteByTruncID(provider string, trunc uint64, nonce uint64) (trusted.Quote, error)
}

// ComponentsAttestor adapts the trusted components to the Attestor
// interface.
type ComponentsAttestor struct {
	C *trusted.Components
}

// QuoteByTruncID implements Attestor.
func (a ComponentsAttestor) QuoteByTruncID(provider string, trunc, nonce uint64) (trusted.Quote, error) {
	e, _, err := a.C.RTM.LookupByTruncID(trunc)
	if err != nil {
		return trusted.Quote{}, err
	}
	return a.C.Attest.QuoteTaskForProvider(provider, e.Task.ID, nonce)
}
