package remote

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/trusted"
)

// TestAttestTimesOutOnSilentPeer: a device that never answers (or never
// reads) cannot hang the verifier past its deadline.
func TestAttestTimesOutOnSilentPeer(t *testing.T) {
	p, e := devicePlatform(t)
	c := oemClient(p, ClientOptions{Timeout: 50 * time.Millisecond})
	// No server goroutine: the pipe blocks forever.
	_, verConn := net.Pipe()
	defer verConn.Close()
	_, err := c.Attest(verConn, e.ID, 1)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestServeOneTimesOutOnSilentClient: a client that connects and goes
// silent cannot hang the device.
func TestServeOneTimesOutOnSilentClient(t *testing.T) {
	p, _ := devicePlatform(t)
	devConn, verConn := net.Pipe()
	defer verConn.Close()
	defer devConn.Close()
	srv := NewServer(ComponentsAttestor{C: p.C}, ServerOptions{Timeout: 50 * time.Millisecond})
	err := srv.ServeOne(devConn)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestServeConnPersistent: several exchanges on one connection, then a
// clean shutdown.
func TestServeConnPersistent(t *testing.T) {
	p, e := devicePlatform(t)
	c := oemClient(p, ClientOptions{})
	devConn, verConn := net.Pipe()
	done := make(chan error, 1)
	srv := NewServer(ComponentsAttestor{C: p.C}, ServerOptions{})
	go func() {
		done <- srv.ServeConn(devConn)
	}()
	for nonce := uint64(1); nonce <= 3; nonce++ {
		q, err := c.Attest(verConn, e.ID, nonce)
		if err != nil {
			t.Fatalf("nonce %d: %v", nonce, err)
		}
		if q.Nonce != nonce {
			t.Errorf("echoed nonce %d, want %d", q.Nonce, nonce)
		}
	}
	verConn.Close()
	if err := <-done; err != nil {
		t.Fatalf("server exit = %v, want nil on clean close", err)
	}
}

// TestServeConnErrorBudget: a peer spewing malformed frames gets
// dropped after the budget, not served forever.
func TestServeConnErrorBudget(t *testing.T) {
	p, _ := devicePlatform(t)
	devConn, verConn := net.Pipe()
	done := make(chan error, 1)
	srv := NewServer(ComponentsAttestor{C: p.C}, ServerOptions{ErrorBudget: 3})
	go func() {
		done <- srv.ServeConn(devConn)
	}()
	for i := 0; i < 3; i++ {
		if err := writeFrame(verConn, DefaultMaxFrame, MsgQuote, []byte("junk")); err != nil {
			t.Fatal(err)
		}
		// Drain the error reply so the pipe does not block.
		if typ, _, err := readFrame(verConn, DefaultMaxFrame); err != nil || typ != MsgError {
			t.Fatalf("reply %d: type %d err %v", i, typ, err)
		}
	}
	err := <-done
	if !errors.Is(err, ErrErrorBudget) {
		t.Fatalf("server exit = %v, want ErrErrorBudget", err)
	}
	verConn.Close()
}

// pipeDialer dials a fresh in-memory connection to a ServeOne instance,
// failing the first failures dials.
func pipeDialer(att Attestor, failures int) (func() (net.Conn, error), *int) {
	srv := NewServer(att, ServerOptions{})
	dials := 0
	dial := func() (net.Conn, error) {
		dials++
		if dials <= failures {
			return nil, fmt.Errorf("dial refused (attempt %d)", dials)
		}
		devConn, verConn := net.Pipe()
		go func() {
			srv.ServeOne(devConn)
			devConn.Close()
		}()
		return verConn, nil
	}
	return dial, &dials
}

// TestAttestRetryRecoversFromFlakyDials: two dial failures, then
// success; backoff doubles and the succeeding attempt used a fresh
// nonce.
func TestAttestRetryRecoversFromFlakyDials(t *testing.T) {
	p, e := devicePlatform(t)
	dial, dials := pipeDialer(ComponentsAttestor{C: p.C}, 2)
	var sleeps []time.Duration
	c := oemClient(p, ClientOptions{
		Attempts: 4,
		Backoff:  time.Millisecond,
		Sleep:    func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	q, attempts, err := c.AttestRetry(dial, e.ID, 100)
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if attempts != 3 || *dials != 3 {
		t.Errorf("attempts = %d, dials = %d, want 3", attempts, *dials)
	}
	// Fresh nonce per attempt: base 100, third attempt → 102.
	if q.Nonce != 102 {
		t.Errorf("nonce = %d, want 102", q.Nonce)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v (exponential backoff)", i, sleeps[i], want[i])
		}
	}
}

// TestAttestRetryStopsOnAuthoritativeRefusal: a device that answers
// "unknown identity" is believed the first time; retrying is pointless.
func TestAttestRetryStopsOnAuthoritativeRefusal(t *testing.T) {
	p, _ := devicePlatform(t)
	dial, dials := pipeDialer(ComponentsAttestor{C: p.C}, 0)
	im, err2 := asm.Assemble(".task \"ghost2\"\n.entry e\n.text\ne:\n hlt\n")
	if err2 != nil {
		t.Fatal(err2)
	}
	ghost := trusted.IdentityOfImage(im)
	c := oemClient(p, ClientOptions{
		Attempts: 5,
		Backoff:  time.Millisecond,
		Sleep:    func(time.Duration) {},
	})
	_, attempts, err := c.AttestRetry(dial, ghost, 1)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if attempts != 1 || *dials != 1 {
		t.Errorf("attempts = %d, dials = %d; refusal must not be retried", attempts, *dials)
	}
}

// TestAttestRetryExhausts: if every attempt fails on transport, the
// error reports the bounded attempt count.
func TestAttestRetryExhausts(t *testing.T) {
	p, e := devicePlatform(t)
	dial, dials := pipeDialer(ComponentsAttestor{C: p.C}, 100) // always refuse
	c := oemClient(p, ClientOptions{
		Attempts: 3,
		Backoff:  time.Millisecond,
		Sleep:    func(time.Duration) {},
	})
	_, attempts, err := c.AttestRetry(dial, e.ID, 1)
	if err == nil {
		t.Fatal("retry succeeded against a dead network")
	}
	if attempts != 3 || *dials != 3 {
		t.Errorf("attempts = %d, dials = %d, want 3", attempts, *dials)
	}
}

// TestAttestRetryWallBudget: against a dead network the loop stops as
// soon as the next backoff sleep would exceed the wall budget —
// typed as ErrRetryBudget, still wrapping the transport cause, and
// never oversleeping the budget.
func TestAttestRetryWallBudget(t *testing.T) {
	p, e := devicePlatform(t)
	errDown := errors.New("network down")
	dials := 0
	dial := func() (net.Conn, error) {
		dials++
		return nil, errDown
	}
	var sleeps []time.Duration
	// Backoff schedule 1,2,4,8… ms: 1ms and 2ms fit in the 4ms budget,
	// the 4ms third sleep would total 7ms — refused.
	c := oemClient(p, ClientOptions{
		Attempts:   8,
		Backoff:    time.Millisecond,
		WallBudget: 4 * time.Millisecond,
		Sleep:      func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	_, attempts, err := c.AttestRetry(dial, e.ID, 1)
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	if !errors.Is(err, errDown) {
		t.Errorf("budget error %v does not wrap the transport cause", err)
	}
	if attempts != 3 || dials != 3 {
		t.Errorf("attempts = %d, dials = %d, want 3 (1ms+2ms spent, 4ms refused)", attempts, dials)
	}
	var total time.Duration
	for _, d := range sleeps {
		total += d
	}
	if total > 4*time.Millisecond {
		t.Errorf("slept %v, more than the %v budget", total, 4*time.Millisecond)
	}
}

// TestAttestRetryWallBudgetGenerous: a budget that covers the whole
// schedule changes nothing — flaky dials still recover.
func TestAttestRetryWallBudgetGenerous(t *testing.T) {
	p, e := devicePlatform(t)
	dial, dials := pipeDialer(ComponentsAttestor{C: p.C}, 2)
	c := oemClient(p, ClientOptions{
		Attempts:   4,
		Backoff:    time.Millisecond,
		WallBudget: time.Second,
		Sleep:      func(time.Duration) {},
	})
	q, attempts, err := c.AttestRetry(dial, e.ID, 50)
	if err != nil {
		t.Fatalf("retry failed under a generous budget: %v", err)
	}
	if attempts != 3 || *dials != 3 {
		t.Errorf("attempts = %d, dials = %d, want 3", attempts, *dials)
	}
	if q.Nonce != 52 {
		t.Errorf("nonce = %d, want 52", q.Nonce)
	}
}
