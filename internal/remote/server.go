package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// ServerOptions parameterizes the device side of the protocol. The zero
// value is ready: default deadline, default error budget, default frame
// limit, no stats.
type ServerOptions struct {
	// Timeout bounds each exchange's I/O (0 = DefaultIOTimeout).
	Timeout time.Duration
	// ErrorBudget is how many protocol errors (malformed frames, bad
	// challenges) one persistent connection may produce before it is
	// dropped (0 = 3).
	ErrorBudget int
	// MaxFrame bounds frame sizes in both directions, type byte
	// included (0 = DefaultMaxFrame). Oversize frames are rejected with
	// ErrFrameTooLarge.
	MaxFrame int
	// Stats, when non-nil, accumulates exchange/error accounting.
	Stats *ServeStats
	// Obs, when non-nil, receives the device-side session-lifecycle
	// events (SubRemote / KindSession) for device-initiated sessions:
	// one phase=hello event when AttestTo opens the session and one
	// closing event (phase=verdict/refused/error) stamped with the
	// device-cycle end-to-end latency. Both carry the session ordinal
	// from the Hello, forming the correlation key the fleet plane
	// echoes. Nil costs one pointer check per session.
	Obs trace.Sink
	// Cycles supplies the simulated cycle counter for Obs timestamps
	// (nil stamps zero). Reading the counter never advances it, so
	// observation keeps the zero-impact contract.
	Cycles func() uint64
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.Timeout == 0 {
		o.Timeout = DefaultIOTimeout
	}
	if o.ErrorBudget == 0 {
		o.ErrorBudget = 3
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	return o
}

// Server is the device side of the wire protocol: it owns an Attestor
// and answers verifier challenges, or initiates sessions toward a
// verifier plane with AttestTo. Safe for concurrent use across
// connections.
type Server struct {
	att Attestor
	opt ServerOptions
}

// NewServer builds a device-side server around att.
func NewServer(att Attestor, opt ServerOptions) *Server {
	return &Server{att: att, opt: opt.withDefaults()}
}

// Options returns the server's resolved options (defaults applied).
func (s *Server) Options() ServerOptions { return s.opt }

// ServeOne handles a single challenge/response exchange on conn under
// the server's I/O deadline.
func (s *Server) ServeOne(conn net.Conn) error {
	return withDeadline(conn, s.opt.Timeout, func() error { return s.serveExchange(conn) })
}

// serveExchange is one challenge/response exchange (no deadline
// handling; the callers wrap it).
func (s *Server) serveExchange(conn net.Conn) error {
	typ, payload, err := readFrame(conn, s.opt.MaxFrame)
	if err != nil {
		return err
	}
	if typ != MsgChallenge {
		writeFrame(conn, s.opt.MaxFrame, MsgError, []byte("expected challenge"))
		return fmt.Errorf("%w: type %d", ErrBadMessage, typ)
	}
	ch, err := unmarshalChallenge(payload)
	if err != nil {
		writeFrame(conn, s.opt.MaxFrame, MsgError, []byte("bad challenge"))
		return err
	}
	return s.answer(conn, ch)
}

// answer quotes the challenged task and writes the reply frame.
func (s *Server) answer(conn net.Conn, ch Challenge) error {
	q, err := s.att.QuoteByTruncID(ch.Provider, ch.TruncID, ch.Nonce)
	if err != nil {
		writeFrame(conn, s.opt.MaxFrame, MsgError, []byte(err.Error()))
		return nil // the protocol handled it; not a server failure
	}
	return writeFrame(conn, s.opt.MaxFrame, MsgQuote, q.Marshal())
}

// ServeConn answers challenges on a persistent connection until the
// peer closes it, an exchange times out, a transport error occurs, or
// the connection exhausts its protocol-error budget. It returns nil on
// clean shutdown (EOF).
func (s *Server) ServeConn(conn net.Conn) error {
	protoErrs := 0
	for {
		err := s.ServeOne(conn)
		switch {
		case err == nil:
			if s.opt.Stats != nil {
				atomic.AddUint64(&s.opt.Stats.exchanges, 1)
			}
			continue
		case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
			return nil
		case errors.Is(err, ErrTimeout):
			if s.opt.Stats != nil {
				atomic.AddUint64(&s.opt.Stats.timeouts, 1)
			}
			return err
		case errors.Is(err, ErrBadMessage), errors.Is(err, ErrFrameTooLarge):
			protoErrs++
			if s.opt.Stats != nil {
				atomic.AddUint64(&s.opt.Stats.frameErrors, 1)
			}
			if protoErrs >= s.opt.ErrorBudget {
				if s.opt.Stats != nil {
					atomic.AddUint64(&s.opt.Stats.drops, 1)
				}
				return fmt.Errorf("%w: %d protocol errors", ErrErrorBudget, protoErrs)
			}
		default:
			return err
		}
	}
}

// Serve accepts connections on l and answers one challenge per
// connection until Accept fails (listener closed). A misbehaving
// connection — malformed frames, stalls past the deadline — is dropped
// and serving continues; one bad peer cannot take the attestation
// service down for everyone else.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.ServeOne(conn)
		conn.Close()
	}
}

// AttestTo runs a device-initiated session on conn: send the hello,
// answer the verifier plane's challenge, and wait for its verdict. A
// plane that refuses the hello (MsgError) surfaces as ErrRefused; a
// failed appraisal (MsgVerdict fail) as ErrDenied — both wrapping the
// plane's reason. Waiting for the verdict keeps the session synchronous
// end to end: when AttestTo returns, the plane has recorded the
// outcome, so the device's next session sees its up-to-date standing.
func (s *Server) AttestTo(conn net.Conn, h Hello) error {
	start := s.now()
	s.emitSession(h, start, trace.Str("phase", "hello"), trace.Str("provider", h.Provider))
	err := withDeadline(conn, s.opt.Timeout, func() error {
		payload, err := marshalHello(h)
		if err != nil {
			return err
		}
		if err := writeFrame(conn, s.opt.MaxFrame, MsgHello, payload); err != nil {
			return err
		}
		typ, resp, err := readFrame(conn, s.opt.MaxFrame)
		if err != nil {
			return err
		}
		switch typ {
		case MsgChallenge:
			ch, err := unmarshalChallenge(resp)
			if err != nil {
				writeFrame(conn, s.opt.MaxFrame, MsgError, []byte("bad challenge"))
				return err
			}
			if err := s.answer(conn, ch); err != nil {
				return err
			}
			return s.awaitVerdict(conn)
		case MsgError:
			return fmt.Errorf("%w: %s", ErrRefused, resp)
		default:
			return fmt.Errorf("%w: type %d", ErrBadMessage, typ)
		}
	})
	end := s.now()
	switch {
	case err == nil:
		s.emitSession(h, end, trace.Str("phase", "verdict"),
			trace.Str("result", "pass"), trace.Num("e2e", end-start))
	case errors.Is(err, ErrDenied):
		s.emitSession(h, end, trace.Str("phase", "verdict"),
			trace.Str("result", "fail"), trace.Num("e2e", end-start))
	case errors.Is(err, ErrRefused):
		s.emitSession(h, end, trace.Str("phase", "refused"),
			trace.Num("e2e", end-start))
	default:
		s.emitSession(h, end, trace.Str("phase", "error"),
			trace.Num("e2e", end-start))
	}
	return err
}

// now samples the simulated cycle counter for session events (0 when
// the server has no cycle source).
func (s *Server) now() uint64 {
	if s.opt.Cycles == nil {
		return 0
	}
	return s.opt.Cycles()
}

// emitSession emits one session-lifecycle event when Obs is wired.
func (s *Server) emitSession(h Hello, cycle uint64, attrs ...trace.Attr) {
	if s.opt.Obs == nil {
		return
	}
	s.opt.Obs.Emit(trace.Event{
		Cycle:   cycle,
		Sub:     trace.SubRemote,
		Kind:    trace.KindSession,
		Subject: h.Device,
		Attrs:   append([]trace.Attr{trace.Num("session", h.Session)}, attrs...),
	})
}

// awaitVerdict reads the session-closing verdict frame.
func (s *Server) awaitVerdict(conn net.Conn) error {
	typ, v, err := readFrame(conn, s.opt.MaxFrame)
	if err != nil {
		return err
	}
	if typ != MsgVerdict || len(v) < 1 {
		return fmt.Errorf("%w: expected verdict, got type %d", ErrBadMessage, typ)
	}
	if v[0] == 1 {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrDenied, v[1:])
}
