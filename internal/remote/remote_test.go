package remote

import (
	"errors"
	"net"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/trusted"
)

const deviceTask = `
.task "fw"
.entry main
.stack 128
.bss 28
.text
main:
    ldi r0, 32000
    svc 2
    jmp main
`

func devicePlatform(t *testing.T) (*core.Platform, *trusted.RegistryEntry) {
	t.Helper()
	p, err := core.NewPlatform(core.Options{Provider: "oem"})
	if err != nil {
		t.Fatal(err)
	}
	im, err := asm.Assemble(deviceTask)
	if err != nil {
		t.Fatal(err)
	}
	tcb, _, err := p.LoadTaskSync(im, core.Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := p.C.RTM.LookupByTask(tcb.ID)
	if !ok {
		t.Fatal("task unregistered")
	}
	return p, e
}

func oemClient(p *core.Platform, opt ClientOptions) *Client {
	return NewClient(p.Provider("oem").Verifier(), "oem", opt)
}

// exchange runs one ServeOne/Attest pair over an in-memory pipe.
func exchange(t *testing.T, p *core.Platform, doVerify func(net.Conn) error) error {
	t.Helper()
	devConn, verConn := net.Pipe()
	done := make(chan error, 1)
	srv := NewServer(ComponentsAttestor{C: p.C}, ServerOptions{})
	go func() {
		defer devConn.Close()
		done <- srv.ServeOne(devConn)
	}()
	verr := doVerify(verConn)
	verConn.Close()
	if serr := <-done; serr != nil {
		t.Logf("server: %v", serr)
	}
	return verr
}

func TestAttestOverWire(t *testing.T) {
	p, e := devicePlatform(t)
	c := oemClient(p, ClientOptions{})
	err := exchange(t, p, func(conn net.Conn) error {
		q, err := c.Attest(conn, e.ID, 0xA1B2)
		if err != nil {
			return err
		}
		if q.ID != e.ID || q.Nonce != 0xA1B2 {
			t.Errorf("quote = %+v", q)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("attest: %v", err)
	}
}

func TestAttestUnknownIdentity(t *testing.T) {
	p, _ := devicePlatform(t)
	c := oemClient(p, ClientOptions{})
	im, _ := asm.Assemble(".task \"ghost\"\n.entry e\n.text\ne:\n hlt\n")
	ghost := trusted.IdentityOfImage(im)
	err := exchange(t, p, func(conn net.Conn) error {
		_, err := c.Attest(conn, ghost, 1)
		return err
	})
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if !strings.Contains(err.Error(), "identity") {
		t.Errorf("err text = %v", err)
	}
}

func TestAttestWrongProviderKey(t *testing.T) {
	p, e := devicePlatform(t)
	// Verifier holds a different provider's key than it asks the device
	// to quote under: the MAC will not verify.
	c := NewClient(p.Provider("someone-else").Verifier(), "oem", ClientOptions{})
	err := exchange(t, p, func(conn net.Conn) error {
		_, err := c.Attest(conn, e.ID, 7)
		return err
	})
	if !errors.Is(err, trusted.ErrQuoteInvalid) {
		t.Fatalf("err = %v, want quote rejection", err)
	}
}

func TestReplayAcrossNonces(t *testing.T) {
	p, e := devicePlatform(t)
	c := oemClient(p, ClientOptions{})
	v := p.Provider("oem").Verifier()
	// Capture a quote at nonce 5, try to pass it off at nonce 6 by
	// replaying the raw frames through a recording proxy.
	var recorded []byte
	err := exchange(t, p, func(conn net.Conn) error {
		q, err := c.Attest(conn, e.ID, 5)
		if err != nil {
			return err
		}
		recorded = q.Marshal()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := trusted.UnmarshalQuote(recorded)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(q, e.ID, 6); err == nil {
		t.Fatal("replayed quote accepted under a fresh nonce")
	}
}

func TestServeOverTCP(t *testing.T) {
	p, e := devicePlatform(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer l.Close()
	go NewServer(ComponentsAttestor{C: p.C}, ServerOptions{}).Serve(l)

	c := oemClient(p, ClientOptions{})
	for nonce := uint64(1); nonce <= 3; nonce++ {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		q, err := c.Attest(conn, e.ID, nonce)
		conn.Close()
		if err != nil {
			t.Fatalf("nonce %d: %v", nonce, err)
		}
		if q.Nonce != nonce {
			t.Errorf("nonce echoed %d, want %d", q.Nonce, nonce)
		}
	}
}

func TestChallengeRoundTripQuick(t *testing.T) {
	f := func(provider string, trunc, nonce uint64) bool {
		if len(provider) > 255 {
			provider = provider[:255]
		}
		c := Challenge{Provider: provider, TruncID: trunc, Nonce: nonce}
		b, err := marshalChallenge(c)
		if err != nil {
			return false
		}
		out, err := unmarshalChallenge(b)
		return err == nil && out == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHelloRoundTripQuick(t *testing.T) {
	f := func(device, provider string, trunc, session uint64) bool {
		if len(device) > 255 {
			device = device[:255]
		}
		if len(provider) > 255 {
			provider = provider[:255]
		}
		h := Hello{Device: device, Provider: provider, TruncID: trunc, Session: session}
		b, err := marshalHello(h)
		if err != nil {
			return false
		}
		out, err := unmarshalHello(b)
		return err == nil && out == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestAttestToChallenged: a device-initiated session against a plane
// that accepts the hello and challenges; the device's quote MAC-checks
// and carries the expected identity.
func TestAttestToChallenged(t *testing.T) {
	p, e := devicePlatform(t)
	srv := NewServer(ComponentsAttestor{C: p.C}, ServerOptions{})
	c := oemClient(p, ClientOptions{})
	devConn, verConn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		defer devConn.Close()
		done <- srv.AttestTo(devConn, Hello{Device: "dev-0", Provider: "oem", TruncID: e.ID.TruncatedID()})
	}()
	h, err := c.AwaitHello(verConn)
	if err != nil {
		t.Fatalf("await hello: %v", err)
	}
	if h.Device != "dev-0" || h.Provider != "oem" || h.TruncID != e.ID.TruncatedID() {
		t.Fatalf("hello = %+v", h)
	}
	q, err := c.Challenge(verConn, h.TruncID, 99)
	if err != nil {
		t.Fatalf("challenge: %v", err)
	}
	if q.ID != e.ID || q.Nonce != 99 {
		t.Errorf("quote = %+v", q)
	}
	if err := c.Verdict(verConn, true, ""); err != nil {
		t.Fatalf("verdict: %v", err)
	}
	verConn.Close()
	if err := <-done; err != nil {
		t.Fatalf("device side: %v", err)
	}
}

// TestAttestToSessionEvents: with Obs wired, AttestTo brackets the
// session in KindSession events — phase=hello at open, a closing
// phase=verdict event carrying the pass result and the device-cycle
// end-to-end latency — both stamped with the hello's session ordinal.
func TestAttestToSessionEvents(t *testing.T) {
	p, e := devicePlatform(t)
	buf := &trace.Buffer{}
	srv := NewServer(ComponentsAttestor{C: p.C}, ServerOptions{Obs: buf, Cycles: p.M.Cycles})
	c := oemClient(p, ClientOptions{})
	devConn, verConn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		defer devConn.Close()
		done <- srv.AttestTo(devConn, Hello{Device: "dev-0", Provider: "oem", TruncID: e.ID.TruncatedID(), Session: 4})
	}()
	h, err := c.AwaitHello(verConn)
	if err != nil {
		t.Fatalf("await hello: %v", err)
	}
	if h.Session != 4 {
		t.Fatalf("session ordinal = %d, want 4", h.Session)
	}
	if _, err := c.Challenge(verConn, h.TruncID, 99); err != nil {
		t.Fatalf("challenge: %v", err)
	}
	if err := c.Verdict(verConn, true, ""); err != nil {
		t.Fatalf("verdict: %v", err)
	}
	verConn.Close()
	if err := <-done; err != nil {
		t.Fatalf("device side: %v", err)
	}

	evs := buf.Events()
	if len(evs) != 2 {
		t.Fatalf("session events = %d (%v), want 2", len(evs), evs)
	}
	open, closing := evs[0], evs[1]
	for i, ev := range evs {
		if ev.Sub != trace.SubRemote || ev.Kind != trace.KindSession || ev.Subject != "dev-0" {
			t.Fatalf("event %d = %v", i, ev)
		}
		if n, ok := ev.NumAttr("session"); !ok || n != 4 {
			t.Fatalf("event %d session ordinal = %d, %v", i, n, ok)
		}
	}
	if ph, _ := open.Attr("phase"); ph.Str != "hello" {
		t.Fatalf("open phase = %q", ph.Str)
	}
	if ph, _ := closing.Attr("phase"); ph.Str != "verdict" {
		t.Fatalf("close phase = %q", ph.Str)
	}
	if res, _ := closing.Attr("result"); res.Str != "pass" {
		t.Fatalf("close result = %q", res.Str)
	}
	e2e, ok := closing.NumAttr("e2e")
	if !ok || e2e != closing.Cycle-open.Cycle {
		t.Fatalf("e2e = %d (ok=%v), span = %d", e2e, ok, closing.Cycle-open.Cycle)
	}
	if e2e == 0 {
		t.Fatal("e2e latency is zero; quoting should charge cycles")
	}
}

// TestAttestToDenied: a failed appraisal verdict surfaces as ErrDenied
// on the device, wrapping the plane's reason.
func TestAttestToDenied(t *testing.T) {
	p, e := devicePlatform(t)
	srv := NewServer(ComponentsAttestor{C: p.C}, ServerOptions{})
	c := oemClient(p, ClientOptions{})
	devConn, verConn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		defer devConn.Close()
		done <- srv.AttestTo(devConn, Hello{Device: "dev-0", Provider: "oem", TruncID: e.ID.TruncatedID()})
	}()
	h, err := c.AwaitHello(verConn)
	if err != nil {
		t.Fatalf("await hello: %v", err)
	}
	if _, err := c.Challenge(verConn, h.TruncID, 7); err != nil {
		t.Fatalf("challenge: %v", err)
	}
	if err := c.Verdict(verConn, false, "unknown measurement"); err != nil {
		t.Fatalf("verdict: %v", err)
	}
	verConn.Close()
	err = <-done
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("device side = %v, want ErrDenied", err)
	}
	if !strings.Contains(err.Error(), "unknown measurement") {
		t.Errorf("reason lost: %v", err)
	}
}

// TestAttestToRefused: a plane that refuses the hello surfaces as
// ErrRefused on the device, wrapping the plane's reason.
func TestAttestToRefused(t *testing.T) {
	p, e := devicePlatform(t)
	srv := NewServer(ComponentsAttestor{C: p.C}, ServerOptions{})
	c := oemClient(p, ClientOptions{})
	devConn, verConn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		defer devConn.Close()
		done <- srv.AttestTo(devConn, Hello{Device: "dev-9", Provider: "oem", TruncID: e.ID.TruncatedID()})
	}()
	if _, err := c.AwaitHello(verConn); err != nil {
		t.Fatalf("await hello: %v", err)
	}
	if err := c.Refuse(verConn, "device quarantined"); err != nil {
		t.Fatalf("refuse: %v", err)
	}
	verConn.Close()
	err := <-done
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("device err = %v, want ErrRefused", err)
	}
	if !strings.Contains(err.Error(), "quarantined") {
		t.Errorf("refusal reason lost: %v", err)
	}
}

func TestMalformedFrames(t *testing.T) {
	p, _ := devicePlatform(t)
	devConn, verConn := net.Pipe()
	done := make(chan error, 1)
	srv := NewServer(ComponentsAttestor{C: p.C}, ServerOptions{})
	go func() {
		defer devConn.Close()
		done <- srv.ServeOne(devConn)
	}()
	// Send a non-challenge frame.
	if err := writeFrame(verConn, DefaultMaxFrame, MsgQuote, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(verConn, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError {
		t.Errorf("reply type = %d, payload %q", typ, payload)
	}
	verConn.Close()
	if err := <-done; err == nil {
		t.Error("server accepted junk")
	}
}

func TestFrameLimits(t *testing.T) {
	if err := writeFrame(discard{}, DefaultMaxFrame, MsgQuote, make([]byte, DefaultMaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized write = %v", err)
	}
	// Oversized length prefix on read.
	r := strings.NewReader("\xff\xff\xff\xff")
	if _, _, err := readFrame(r, DefaultMaxFrame); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized read = %v", err)
	}
	// Zero-length frame.
	r = strings.NewReader("\x00\x00\x00\x00")
	if _, _, err := readFrame(r, DefaultMaxFrame); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("zero frame = %v", err)
	}
}

// TestMaxFrameOption: the frame limit is per Server/Client, not a
// package constant. A server with a small limit rejects frames a
// default client would send; a client with a raised limit accepts
// frames beyond DefaultMaxFrame.
func TestMaxFrameOption(t *testing.T) {
	p, e := devicePlatform(t)
	// Server limited to 16-byte frames: the client's challenge (> 16
	// bytes with the provider string) is rejected on read and answered
	// with nothing — the client sees the pipe close.
	devConn, verConn := net.Pipe()
	done := make(chan error, 1)
	small := NewServer(ComponentsAttestor{C: p.C}, ServerOptions{MaxFrame: 16})
	go func() {
		defer devConn.Close()
		done <- small.ServeOne(devConn)
	}()
	c := oemClient(p, ClientOptions{})
	if _, err := c.Attest(verConn, e.ID, 1); err == nil {
		t.Error("attest succeeded against a server that cannot read the challenge")
	}
	verConn.Close()
	if err := <-done; !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("server err = %v, want ErrFrameTooLarge", err)
	}

	// A raised limit carries payloads DefaultMaxFrame would reject —
	// same writer, bigger budget.
	big := make([]byte, DefaultMaxFrame+100)
	if err := writeFrame(discard{}, DefaultMaxFrame, MsgQuote, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("default limit accepted oversize frame: %v", err)
	}
	if err := writeFrame(discard{}, 2*DefaultMaxFrame, MsgQuote, big); err != nil {
		t.Errorf("raised limit rejected in-budget frame: %v", err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
