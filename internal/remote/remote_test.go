package remote

import (
	"errors"
	"net"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/trusted"
)

const deviceTask = `
.task "fw"
.entry main
.stack 128
.bss 28
.text
main:
    ldi r0, 32000
    svc 2
    jmp main
`

func devicePlatform(t *testing.T) (*core.Platform, *trusted.RegistryEntry) {
	t.Helper()
	p, err := core.NewPlatform(core.Options{Provider: "oem"})
	if err != nil {
		t.Fatal(err)
	}
	im, err := asm.Assemble(deviceTask)
	if err != nil {
		t.Fatal(err)
	}
	tcb, _, err := p.LoadTaskSync(im, core.Secure, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := p.C.RTM.LookupByTask(tcb.ID)
	if !ok {
		t.Fatal("task unregistered")
	}
	return p, e
}

// exchange runs one ServeOne/Attest pair over an in-memory pipe.
func exchange(t *testing.T, p *core.Platform, provider string, expected trusted.Quote, doVerify func(net.Conn) error) error {
	t.Helper()
	devConn, verConn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		defer devConn.Close()
		done <- ServeOne(devConn, ComponentsAttestor{C: p.C})
	}()
	verr := doVerify(verConn)
	verConn.Close()
	if serr := <-done; serr != nil {
		t.Logf("server: %v", serr)
	}
	return verr
}

func TestAttestOverWire(t *testing.T) {
	p, e := devicePlatform(t)
	v := p.VerifierForProvider("oem")
	err := exchange(t, p, "oem", trusted.Quote{}, func(conn net.Conn) error {
		q, err := Attest(conn, v, "oem", e.ID, 0xA1B2)
		if err != nil {
			return err
		}
		if q.ID != e.ID || q.Nonce != 0xA1B2 {
			t.Errorf("quote = %+v", q)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("attest: %v", err)
	}
}

func TestAttestUnknownIdentity(t *testing.T) {
	p, _ := devicePlatform(t)
	v := p.VerifierForProvider("oem")
	im, _ := asm.Assemble(".task \"ghost\"\n.entry e\n.text\ne:\n hlt\n")
	ghost := trusted.IdentityOfImage(im)
	err := exchange(t, p, "oem", trusted.Quote{}, func(conn net.Conn) error {
		_, err := Attest(conn, v, "oem", ghost, 1)
		return err
	})
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if !strings.Contains(err.Error(), "identity") {
		t.Errorf("err text = %v", err)
	}
}

func TestAttestWrongProviderKey(t *testing.T) {
	p, e := devicePlatform(t)
	// Verifier holds a different provider's key than it asks the device
	// to quote under: the MAC will not verify.
	v := p.VerifierForProvider("someone-else")
	err := exchange(t, p, "oem", trusted.Quote{}, func(conn net.Conn) error {
		_, err := Attest(conn, v, "oem", e.ID, 7)
		return err
	})
	if !errors.Is(err, trusted.ErrQuoteInvalid) {
		t.Fatalf("err = %v, want quote rejection", err)
	}
}

func TestReplayAcrossNonces(t *testing.T) {
	p, e := devicePlatform(t)
	v := p.VerifierForProvider("oem")
	// Capture a quote at nonce 5, try to pass it off at nonce 6 by
	// replaying the raw frames through a recording proxy.
	var recorded []byte
	err := exchange(t, p, "oem", trusted.Quote{}, func(conn net.Conn) error {
		q, err := Attest(conn, v, "oem", e.ID, 5)
		if err != nil {
			return err
		}
		recorded = q.Marshal()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := trusted.UnmarshalQuote(recorded)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(q, e.ID, 6); err == nil {
		t.Fatal("replayed quote accepted under a fresh nonce")
	}
}

func TestServeOverTCP(t *testing.T) {
	p, e := devicePlatform(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer l.Close()
	go Serve(l, ComponentsAttestor{C: p.C})

	v := p.VerifierForProvider("oem")
	for nonce := uint64(1); nonce <= 3; nonce++ {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		q, err := Attest(conn, v, "oem", e.ID, nonce)
		conn.Close()
		if err != nil {
			t.Fatalf("nonce %d: %v", nonce, err)
		}
		if q.Nonce != nonce {
			t.Errorf("nonce echoed %d, want %d", q.Nonce, nonce)
		}
	}
}

func TestChallengeRoundTripQuick(t *testing.T) {
	f := func(provider string, trunc, nonce uint64) bool {
		if len(provider) > 255 {
			provider = provider[:255]
		}
		c := Challenge{Provider: provider, TruncID: trunc, Nonce: nonce}
		b, err := marshalChallenge(c)
		if err != nil {
			return false
		}
		out, err := unmarshalChallenge(b)
		return err == nil && out == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedFrames(t *testing.T) {
	p, _ := devicePlatform(t)
	devConn, verConn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		defer devConn.Close()
		done <- ServeOne(devConn, ComponentsAttestor{C: p.C})
	}()
	// Send a non-challenge frame.
	if err := writeFrame(verConn, MsgQuote, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(verConn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError {
		t.Errorf("reply type = %d, payload %q", typ, payload)
	}
	verConn.Close()
	if err := <-done; err == nil {
		t.Error("server accepted junk")
	}
}

func TestFrameLimits(t *testing.T) {
	if err := writeFrame(discard{}, MsgQuote, make([]byte, maxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized write = %v", err)
	}
	// Oversized length prefix on read.
	r := strings.NewReader("\xff\xff\xff\xff")
	if _, _, err := readFrame(r); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized read = %v", err)
	}
	// Zero-length frame.
	r = strings.NewReader("\x00\x00\x00\x00")
	if _, _, err := readFrame(r); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("zero frame = %v", err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
