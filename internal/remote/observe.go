package remote

import (
	"errors"
	"sync/atomic"

	"repro/internal/trace"
	"repro/internal/trusted"
)

// Observability for the wire protocol. The remote package sits on both
// sides of a real network connection, so its counters must be safe
// under the goroutines the exchanges run on; everything here is atomic
// and the sink (a trace.Buffer, typically) locks internally.

// TracedAttestor wraps the device-side Attestor with quote accounting
// and typed round-trip events (KindAttest from SubRemote — the wire
// view, complementing the trusted component's own SubAttest events).
// Each exchange emits a request/reply event pair so the analysis layer
// can reconstruct the round-trip span; the reply also carries the
// round-trip time as an rtt attribute, making it self-contained for
// truncated traces and online SLO monitoring.
type TracedAttestor struct {
	// Inner answers the actual challenges.
	Inner Attestor
	// Cycles supplies event timestamps — normally the device machine's
	// cycle counter. Nil stamps zero (events still carry attributes).
	Cycles func() uint64
	// Obs receives a request and a reply event per exchange; nil
	// disables emission.
	Obs trace.Sink

	served uint64
	denied uint64
}

// now reads the cycle source (0 when unset).
func (t *TracedAttestor) now() uint64 {
	if t.Cycles == nil {
		return 0
	}
	return t.Cycles()
}

// QuoteByTruncID implements Attestor, delegating to Inner and
// accounting the exchange.
func (t *TracedAttestor) QuoteByTruncID(provider string, trunc, nonce uint64) (trusted.Quote, error) {
	var start uint64
	if t.Obs != nil {
		start = t.now()
		t.Obs.Emit(trace.Event{
			Cycle: start, Sub: trace.SubRemote,
			Kind: trace.KindAttest, Subject: provider,
			Attrs: []trace.Attr{
				trace.Str("phase", "request"),
				trace.Hex("trunc", trunc),
			},
		})
	}
	q, err := t.Inner.QuoteByTruncID(provider, trunc, nonce)
	result := "ok"
	if err != nil {
		atomic.AddUint64(&t.denied, 1)
		result = err.Error()
	} else {
		atomic.AddUint64(&t.served, 1)
	}
	if t.Obs != nil {
		end := t.now()
		var rtt uint64
		if end >= start {
			rtt = end - start
		}
		t.Obs.Emit(trace.Event{
			Cycle: end, Sub: trace.SubRemote,
			Kind: trace.KindAttest, Subject: provider,
			Attrs: []trace.Attr{
				trace.Str("phase", "reply"),
				trace.Hex("trunc", trunc),
				trace.Str("result", result),
				trace.Num("rtt", rtt),
			},
		})
	}
	return q, err
}

// Counts returns how many wire exchanges produced a quote and how many
// were denied by the device.
func (t *TracedAttestor) Counts() (served, denied uint64) {
	return atomic.LoadUint64(&t.served), atomic.LoadUint64(&t.denied)
}

// RetryStats accumulates verifier-side accounting across AttestRetry
// calls (hook it in through ClientOptions.Stats). Safe for concurrent
// use; the zero value is ready.
type RetryStats struct {
	calls    uint64
	attempts uint64
	retries  uint64 // attempts beyond the first, per call
	failures uint64 // calls that exhausted their attempt budget
	refusals uint64 // authoritative device denials (ErrRemote)
}

func (s *RetryStats) record(attempts int, err error) {
	if s == nil {
		return
	}
	atomic.AddUint64(&s.calls, 1)
	atomic.AddUint64(&s.attempts, uint64(attempts))
	if attempts > 1 {
		atomic.AddUint64(&s.retries, uint64(attempts-1))
	}
	switch {
	case err == nil:
	case errors.Is(err, ErrRemote):
		atomic.AddUint64(&s.refusals, 1)
	default:
		atomic.AddUint64(&s.failures, 1)
	}
}

// Counts returns the accumulated totals: calls made, attempts used
// (including first tries), retries (attempts beyond the first),
// failures (attempt budget exhausted) and refusals (authoritative
// device denials).
func (s *RetryStats) Counts() (calls, attempts, retries, failures, refusals uint64) {
	return atomic.LoadUint64(&s.calls), atomic.LoadUint64(&s.attempts),
		atomic.LoadUint64(&s.retries), atomic.LoadUint64(&s.failures),
		atomic.LoadUint64(&s.refusals)
}

// ServeStats accumulates device-side accounting across ServeConn calls
// (hook it in through ServerOptions.Stats). Safe for concurrent use;
// the zero value is ready.
type ServeStats struct {
	exchanges   uint64 // completed exchanges (quote or protocol error reply)
	frameErrors uint64 // malformed frames / oversized frames / bad challenges
	timeouts    uint64 // exchanges dropped on the I/O deadline
	drops       uint64 // connections dropped for exhausting the error budget
}

// Counts returns the accumulated totals.
func (s *ServeStats) Counts() (exchanges, frameErrors, timeouts, drops uint64) {
	return atomic.LoadUint64(&s.exchanges), atomic.LoadUint64(&s.frameErrors),
		atomic.LoadUint64(&s.timeouts), atomic.LoadUint64(&s.drops)
}
