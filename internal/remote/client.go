package remote

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/sha1"
	"repro/internal/trusted"
)

// ClientOptions parameterizes the verifier side of the protocol. The
// zero value is ready: default deadline and retry schedule, default
// frame limit, no stats.
type ClientOptions struct {
	// Timeout bounds each exchange's I/O (0 = DefaultIOTimeout).
	Timeout time.Duration
	// MaxFrame bounds frame sizes in both directions, type byte
	// included (0 = DefaultMaxFrame). Oversize frames are rejected with
	// ErrFrameTooLarge.
	MaxFrame int
	// Attempts is AttestRetry's total number of tries (0 = 3).
	Attempts int
	// Backoff is AttestRetry's delay before the second attempt; it
	// doubles per attempt (0 = 10ms).
	Backoff time.Duration
	// WallBudget bounds the total time AttestRetry may spend in backoff
	// sleeps across all attempts (0 = unbounded). The budget is
	// accounted from the backoff schedule itself, never from a host
	// clock read, so retry behaviour stays deterministic under test
	// fakes and inside the simulator's determinism vet.
	WallBudget time.Duration
	// Sleep is injectable for tests (nil = time.Sleep).
	Sleep func(time.Duration)
	// Stats, when non-nil, accumulates retry accounting.
	Stats *RetryStats
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Timeout == 0 {
		o.Timeout = DefaultIOTimeout
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.Attempts == 0 {
		o.Attempts = 3
	}
	if o.Backoff == 0 {
		o.Backoff = 10 * time.Millisecond
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Client is the verifier side of the wire protocol: it owns the
// provider's trusted.Verifier and drives exchanges. Safe for concurrent
// use across connections.
type Client struct {
	v        *trusted.Verifier
	provider string
	opt      ClientOptions
}

// NewClient builds a verifier-side client for the given provider key.
func NewClient(v *trusted.Verifier, provider string, opt ClientOptions) *Client {
	return &Client{v: v, provider: provider, opt: opt.withDefaults()}
}

// Provider returns the provider name the client challenges under.
func (c *Client) Provider() string { return c.provider }

// Options returns the client's resolved options (defaults applied).
func (c *Client) Options() ClientOptions { return c.opt }

// exchange sends one challenge and reads the device's reply (no
// deadline handling and no verification; the callers wrap it).
func (c *Client) exchange(conn net.Conn, trunc, nonce uint64) (trusted.Quote, error) {
	payload, err := marshalChallenge(Challenge{
		Provider: c.provider,
		TruncID:  trunc,
		Nonce:    nonce,
	})
	if err != nil {
		return trusted.Quote{}, err
	}
	if err := writeFrame(conn, c.opt.MaxFrame, MsgChallenge, payload); err != nil {
		return trusted.Quote{}, err
	}
	typ, resp, err := readFrame(conn, c.opt.MaxFrame)
	if err != nil {
		return trusted.Quote{}, err
	}
	switch typ {
	case MsgQuote:
		return trusted.UnmarshalQuote(resp)
	case MsgError:
		return trusted.Quote{}, fmt.Errorf("%w: %s", ErrRemote, resp)
	default:
		return trusted.Quote{}, fmt.Errorf("%w: type %d", ErrBadMessage, typ)
	}
}

// Attest runs the verifier side of one exchange on conn under the
// client's I/O deadline: send the challenge, receive the quote, verify
// it against the expected full identity. It returns the verified quote.
// Flaky-network callers use AttestRetry.
func (c *Client) Attest(conn net.Conn, expected sha1.Digest, nonce uint64) (trusted.Quote, error) {
	var q trusted.Quote
	err := withDeadline(conn, c.opt.Timeout, func() error {
		var aerr error
		q, aerr = c.exchange(conn, expected.TruncatedID(), nonce)
		if aerr != nil {
			return aerr
		}
		return c.v.Verify(q, expected, nonce)
	})
	if err != nil {
		return trusted.Quote{}, err
	}
	return q, nil
}

// Challenge runs one exchange against the device-reported truncated
// identity and checks only freshness and authenticity (nonce + MAC),
// leaving identity appraisal to the caller. This is the fleet plane's
// half: it learns *what* the device runs from the authenticated quote
// and appraises the identity against its own policy (typically a
// cached known-good set) afterwards.
func (c *Client) Challenge(conn net.Conn, trunc, nonce uint64) (trusted.Quote, error) {
	var q trusted.Quote
	err := withDeadline(conn, c.opt.Timeout, func() error {
		var aerr error
		q, aerr = c.exchange(conn, trunc, nonce)
		if aerr != nil {
			return aerr
		}
		return c.v.VerifyMAC(q, nonce)
	})
	if err != nil {
		return trusted.Quote{}, err
	}
	return q, nil
}

// AwaitHello reads a device-initiated hello from conn under the
// client's I/O deadline.
func (c *Client) AwaitHello(conn net.Conn) (Hello, error) {
	var h Hello
	err := withDeadline(conn, c.opt.Timeout, func() error {
		typ, payload, err := readFrame(conn, c.opt.MaxFrame)
		if err != nil {
			return err
		}
		if typ != MsgHello {
			return fmt.Errorf("%w: type %d, want hello", ErrBadMessage, typ)
		}
		var herr error
		h, herr = unmarshalHello(payload)
		return herr
	})
	return h, err
}

// Refuse answers a device-initiated hello with an error frame: the
// plane will not attest this device. The device sees ErrRefused.
func (c *Client) Refuse(conn net.Conn, reason string) error {
	return withDeadline(conn, c.opt.Timeout, func() error {
		return writeFrame(conn, c.opt.MaxFrame, MsgError, []byte(reason))
	})
}

// Verdict closes a device-initiated session with the plane's appraisal
// outcome. The device's AttestTo blocks on this frame, so send it only
// after the plane has fully recorded the session — that ordering is
// what lets the device trust that its next hello sees current state. A
// failed verdict surfaces on the device as ErrDenied wrapping reason.
func (c *Client) Verdict(conn net.Conn, pass bool, reason string) error {
	return withDeadline(conn, c.opt.Timeout, func() error {
		payload := make([]byte, 0, 1+len(reason))
		var p byte
		if pass {
			p = 1
		}
		payload = append(payload, p)
		payload = append(payload, reason...)
		return writeFrame(conn, c.opt.MaxFrame, MsgVerdict, payload)
	})
}

// AttestRetry runs the verifier side with bounded retry: each attempt
// dials a fresh connection, uses a fresh nonce (base nonce + attempt
// index, so a replayed or delayed quote from a failed attempt can never
// satisfy a later one), and bounds its I/O with a deadline. Transport
// and protocol failures are retried with exponential backoff; an
// authoritative device answer — a verified quote or an explicit device
// error (ErrRemote) — ends the loop immediately. When WallBudget is
// set, the loop additionally refuses to start a backoff sleep that
// would push the accumulated backoff past the budget, failing with
// ErrRetryBudget instead. Returns the quote, the number of attempts
// used, and the final error.
func (c *Client) AttestRetry(dial func() (net.Conn, error), expected sha1.Digest, nonce uint64) (trusted.Quote, int, error) {
	var lastErr error
	var slept time.Duration
	backoff := c.opt.Backoff
	for attempt := 0; attempt < c.opt.Attempts; attempt++ {
		if attempt > 0 {
			if c.opt.WallBudget > 0 && slept+backoff > c.opt.WallBudget {
				err := fmt.Errorf("%w after %d of %d attempts (%v backoff spent, %v budget): %w",
					ErrRetryBudget, attempt, c.opt.Attempts, slept, c.opt.WallBudget, lastErr)
				c.opt.Stats.record(attempt, err)
				return trusted.Quote{}, attempt, err
			}
			c.opt.Sleep(backoff)
			slept += backoff
			backoff *= 2
		}
		conn, err := dial()
		if err != nil {
			lastErr = err
			continue
		}
		q, err := c.Attest(conn, expected, nonce+uint64(attempt))
		conn.Close()
		if err == nil {
			c.opt.Stats.record(attempt+1, nil)
			return q, attempt + 1, nil
		}
		lastErr = err
		if errors.Is(err, ErrRemote) {
			// The device answered: the task is not attestable. Retrying
			// cannot change an authoritative refusal.
			c.opt.Stats.record(attempt+1, err)
			return trusted.Quote{}, attempt + 1, err
		}
	}
	err := fmt.Errorf("remote: attestation failed after %d attempts: %w", c.opt.Attempts, lastErr)
	c.opt.Stats.record(c.opt.Attempts, err)
	return trusted.Quote{}, c.opt.Attempts, err
}
