package remote

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// frame builds a wire frame with an arbitrary declared length (not
// necessarily matching the body) for boundary seeds.
func frame(declared uint32, body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.LittleEndian.PutUint32(out, declared)
	copy(out[4:], body)
	return out
}

func FuzzReadFrame(f *testing.F) {
	// Well-formed small frame.
	f.Add(frame(5, append([]byte{MsgChallenge}, "abcd"...)))
	// Zero-length frame (rejected).
	f.Add(frame(0, nil))
	// Exactly DefaultMaxFrame: the largest legal frame.
	f.Add(frame(DefaultMaxFrame, append([]byte{MsgQuote}, make([]byte, DefaultMaxFrame-1)...)))
	// One past the boundary: declared DefaultMaxFrame+1 (rejected before read).
	f.Add(frame(DefaultMaxFrame+1, make([]byte, DefaultMaxFrame+1)))
	// Declared huge, body tiny (must not allocate per the prefix and
	// must not hang).
	f.Add(frame(0xFFFFFFFF, []byte{1, 2, 3}))
	// Truncated header and truncated body.
	f.Add([]byte{5, 0})
	f.Add(frame(10, []byte{MsgError, 'x'}))

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data), DefaultMaxFrame)
		if err != nil {
			return
		}
		// Invariants of an accepted frame: within bounds and
		// reconstructible.
		if len(payload)+1 > DefaultMaxFrame {
			t.Fatalf("accepted frame of %d bytes (> DefaultMaxFrame)", len(payload)+1)
		}
		var buf bytes.Buffer
		if werr := writeFrame(&buf, DefaultMaxFrame, typ, payload); werr != nil {
			t.Fatalf("accepted frame cannot be re-written: %v", werr)
		}
		typ2, payload2, rerr := readFrame(&buf, DefaultMaxFrame)
		if rerr != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatal("frame round-trip mismatch")
		}
	})
}

func FuzzUnmarshalChallenge(f *testing.F) {
	// Valid challenge.
	if b, err := marshalChallenge(Challenge{Provider: "oem", TruncID: 1, Nonce: 2}); err == nil {
		f.Add(b)
	}
	// Empty provider.
	if b, err := marshalChallenge(Challenge{}); err == nil {
		f.Add(b)
	}
	// Maximum provider length.
	if b, err := marshalChallenge(Challenge{Provider: string(make([]byte, 255))}); err == nil {
		f.Add(b)
	}
	// Length byte promising more than the buffer holds.
	f.Add([]byte{255, 'a', 'b'})
	// Truncated trailers.
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := unmarshalChallenge(data)
		if err != nil {
			return
		}
		b, merr := marshalChallenge(c)
		if merr != nil {
			t.Fatalf("accepted challenge cannot be re-marshaled: %v", merr)
		}
		if !bytes.Equal(b, data) {
			t.Fatalf("challenge round-trip mismatch: %x != %x", b, data)
		}
	})
}

func FuzzUnmarshalHello(f *testing.F) {
	// Valid hello.
	if b, err := marshalHello(Hello{Device: "dev-1", Provider: "oem", TruncID: 7, Session: 3}); err == nil {
		f.Add(b)
	}
	// A trailer that is exactly one session-ordinal short — the
	// pre-session wire form, which the current decoder must reject.
	if b, err := marshalHello(Hello{Device: "dev-1", Provider: "oem", TruncID: 7}); err == nil {
		f.Add(b[:len(b)-8])
	}
	// Empty fields.
	if b, err := marshalHello(Hello{}); err == nil {
		f.Add(b)
	}
	// Maximum field lengths.
	if b, err := marshalHello(Hello{Device: string(make([]byte, 255)), Provider: string(make([]byte, 255))}); err == nil {
		f.Add(b)
	}
	// Length bytes promising more than the buffer holds.
	f.Add([]byte{255, 'a'})
	f.Add([]byte{1, 'a', 255, 'b'})
	// Truncated trailer.
	f.Add([]byte{0, 0, 1, 2, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := unmarshalHello(data)
		if err != nil {
			return
		}
		b, merr := marshalHello(h)
		if merr != nil {
			t.Fatalf("accepted hello cannot be re-marshaled: %v", merr)
		}
		if !bytes.Equal(b, data) {
			t.Fatalf("hello round-trip mismatch: %x != %x", b, data)
		}
	})
}
