// Package hcrypto provides the keyed primitives TyTAN's trusted
// components build on: HMAC-SHA1, key derivation from the platform key
// Kp, and an encrypt-then-MAC sealing scheme for secure storage.
//
// Mapping to the paper:
//
//   - Remote attestation "uses Message Authentication Codes (MAC) along
//     with an attestation key Ka to prove the authenticity of idt"; Ka
//     is derived from Kp (§3). DeriveKey implements that derivation,
//     including the per-task-provider variant the paper references from
//     SANCUS.
//   - Secure storage generates "a task key Kt = HMAC(idt | Kp)" and
//     encrypts everything a task stores under Kt (§3). TaskKey and
//     Seal/Unseal implement that binding.
//
// The cipher is HMAC-SHA1 in counter mode with an encrypt-then-MAC tag —
// deliberately built from the single primitive (SHA-1) the platform
// carries, as a 2015-era deeply-embedded device would.
package hcrypto

import (
	"encoding/binary"
	"errors"

	"repro/internal/sha1"
)

// MACSize is the length of authentication tags in bytes.
const MACSize = sha1.Size

// HMAC computes HMAC-SHA1(key, msg).
func HMAC(key, msg []byte) sha1.Digest {
	const blockSize = sha1.BlockSize
	var k [blockSize]byte
	if len(key) > blockSize {
		d := sha1.Sum1(key)
		copy(k[:], d[:])
	} else {
		copy(k[:], key)
	}
	var ipad, opad [blockSize]byte
	for i := range k {
		ipad[i] = k[i] ^ 0x36
		opad[i] = k[i] ^ 0x5C
	}
	inner := sha1.New()
	inner.Write(ipad[:])
	inner.Write(msg)
	id := inner.Sum()
	outer := sha1.New()
	outer.Write(opad[:])
	outer.Write(id[:])
	return outer.Sum()
}

// DeriveKey derives a purpose-specific key from the platform key Kp:
// HMAC(Kp, label ‖ context). The attestation key is
// DeriveKey(Kp, "attest", providerID), giving each task provider its
// own attestation key as in the SANCUS scheme the paper cites.
func DeriveKey(kp []byte, label string, context []byte) []byte {
	msg := make([]byte, 0, len(label)+1+len(context))
	msg = append(msg, label...)
	msg = append(msg, 0)
	msg = append(msg, context...)
	d := HMAC(kp, msg)
	return d[:]
}

// TaskKey computes the secure-storage key of a task:
// Kt = HMAC(idt ‖ Kp) exactly as §3 writes it (the identity is the
// HMAC message prefix, the platform key the suffix; the HMAC key is the
// platform key so possession of idt alone derives nothing).
func TaskKey(kp []byte, id sha1.Digest) []byte {
	msg := make([]byte, 0, len(id)+len(kp))
	msg = append(msg, id[:]...)
	msg = append(msg, kp...)
	d := HMAC(kp, msg)
	return d[:]
}

// keystream fills out with HMAC-CTR bytes: block i is
// HMAC(key, nonce ‖ i).
func keystream(key []byte, nonce uint64, out []byte) {
	var in [16]byte
	binary.LittleEndian.PutUint64(in[:8], nonce)
	for i := 0; len(out) > 0; i++ {
		binary.LittleEndian.PutUint64(in[8:], uint64(i))
		block := HMAC(key, in[:])
		n := copy(out, block[:])
		out = out[n:]
	}
}

// ErrAuth is returned by Unseal when the tag does not verify — either
// the blob was tampered with or it was sealed under a different task
// identity.
var ErrAuth = errors.New("hcrypto: authentication failed")

// sealOverhead is the sealed-blob expansion: 8-byte nonce + tag.
const sealOverhead = 8 + MACSize

// Seal encrypts-then-MACs plaintext under key with the given nonce.
// Nonces must not repeat for the same key; the secure-storage task uses
// a per-slot write counter.
func Seal(key []byte, nonce uint64, plaintext []byte) []byte {
	out := make([]byte, 8+len(plaintext), 8+len(plaintext)+MACSize)
	binary.LittleEndian.PutUint64(out, nonce)
	keystream(key, nonce, out[8:])
	for i, p := range plaintext {
		out[8+i] ^= p
	}
	tag := HMAC(key, out)
	return append(out, tag[:]...)
}

// Unseal verifies and decrypts a blob produced by Seal with the same
// key. It returns ErrAuth on any verification failure.
func Unseal(key []byte, blob []byte) ([]byte, error) {
	if len(blob) < sealOverhead {
		return nil, ErrAuth
	}
	body, tag := blob[:len(blob)-MACSize], blob[len(blob)-MACSize:]
	want := HMAC(key, body)
	if !constantTimeEqual(want[:], tag) {
		return nil, ErrAuth
	}
	nonce := binary.LittleEndian.Uint64(body)
	pt := make([]byte, len(body)-8)
	keystream(key, nonce, pt)
	for i := range pt {
		pt[i] ^= body[8+i]
	}
	return pt, nil
}

// SealedSize returns the size of a sealed blob for a plaintext of n
// bytes.
func SealedSize(n int) int { return n + sealOverhead }

// constantTimeEqual compares two equal-length byte slices without
// data-dependent early exit.
func constantTimeEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
