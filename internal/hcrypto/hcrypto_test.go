package hcrypto

import (
	"bytes"
	stdhmac "crypto/hmac"
	stdsha1 "crypto/sha1"
	"encoding/hex"
	"testing"
	"testing/quick"

	"repro/internal/sha1"
)

// TestHMACMatchesStdlibQuick verifies our HMAC-SHA1 against
// crypto/hmac for arbitrary keys (including > block size) and messages.
func TestHMACMatchesStdlibQuick(t *testing.T) {
	f := func(key, msg []byte) bool {
		ours := HMAC(key, msg)
		h := stdhmac.New(stdsha1.New, key)
		h.Write(msg)
		return bytes.Equal(ours[:], h.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestHMACLongKey(t *testing.T) {
	key := bytes.Repeat([]byte{7}, 200) // forces key hashing
	ours := HMAC(key, []byte("m"))
	h := stdhmac.New(stdsha1.New, key)
	h.Write([]byte("m"))
	if !bytes.Equal(ours[:], h.Sum(nil)) {
		t.Error("long-key HMAC mismatch")
	}
}

func TestDeriveKeySeparation(t *testing.T) {
	kp := []byte("platform-key")
	ka := DeriveKey(kp, "attest", []byte("provider-1"))
	ks := DeriveKey(kp, "storage", []byte("provider-1"))
	ka2 := DeriveKey(kp, "attest", []byte("provider-2"))
	if bytes.Equal(ka, ks) {
		t.Error("label does not separate keys")
	}
	if bytes.Equal(ka, ka2) {
		t.Error("context does not separate keys")
	}
	if len(ka) != sha1.Size {
		t.Errorf("key length %d", len(ka))
	}
	// Deterministic.
	if !bytes.Equal(ka, DeriveKey(kp, "attest", []byte("provider-1"))) {
		t.Error("derivation not deterministic")
	}
	// Label/context boundary: ("ab","c") != ("a","bc").
	if bytes.Equal(DeriveKey(kp, "ab", []byte("c")), DeriveKey(kp, "a", []byte("bc"))) {
		t.Error("ambiguous label/context encoding")
	}
}

func TestTaskKeyBinding(t *testing.T) {
	kp := []byte("platform-key")
	idA := sha1.Sum1([]byte("task a binary"))
	idB := sha1.Sum1([]byte("task b binary"))
	if bytes.Equal(TaskKey(kp, idA), TaskKey(kp, idB)) {
		t.Error("different identities share a task key")
	}
	if bytes.Equal(TaskKey(kp, idA), TaskKey([]byte("other platform"), idA)) {
		t.Error("different platforms share a task key")
	}
	if !bytes.Equal(TaskKey(kp, idA), TaskKey(kp, idA)) {
		t.Error("task key not deterministic")
	}
}

func TestSealUnsealRoundTripQuick(t *testing.T) {
	key := []byte("0123456789abcdef")
	f := func(nonce uint64, pt []byte) bool {
		blob := Seal(key, nonce, pt)
		if len(blob) != SealedSize(len(pt)) {
			return false
		}
		out, err := Unseal(key, blob)
		return err == nil && bytes.Equal(out, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnsealRejectsTampering(t *testing.T) {
	key := []byte("k")
	blob := Seal(key, 1, []byte("secret data"))
	for i := 0; i < len(blob); i++ {
		m := append([]byte(nil), blob...)
		m[i] ^= 0x40
		if _, err := Unseal(key, m); err != ErrAuth {
			t.Fatalf("flip at byte %d: err = %v, want ErrAuth", i, err)
		}
	}
}

func TestUnsealRejectsWrongKey(t *testing.T) {
	blob := Seal([]byte("key-a"), 1, []byte("data"))
	if _, err := Unseal([]byte("key-b"), blob); err != ErrAuth {
		t.Errorf("wrong key: err = %v, want ErrAuth", err)
	}
}

func TestUnsealRejectsShortBlob(t *testing.T) {
	if _, err := Unseal([]byte("k"), make([]byte, sealOverhead-1)); err != ErrAuth {
		t.Errorf("short blob: err = %v, want ErrAuth", err)
	}
}

func TestSealEmptyPlaintext(t *testing.T) {
	key := []byte("k")
	blob := Seal(key, 9, nil)
	out, err := Unseal(key, blob)
	if err != nil || len(out) != 0 {
		t.Errorf("empty plaintext: out=%v err=%v", out, err)
	}
}

func TestCiphertextsDifferPerNonce(t *testing.T) {
	key := []byte("k")
	a := Seal(key, 1, []byte("same message"))
	b := Seal(key, 2, []byte("same message"))
	if bytes.Equal(a[8:], b[8:]) {
		t.Error("different nonces produced identical ciphertext")
	}
}

func TestKeystreamDeterministicAndLong(t *testing.T) {
	a := make([]byte, 100)
	b := make([]byte, 100)
	keystream([]byte("k"), 7, a)
	keystream([]byte("k"), 7, b)
	if !bytes.Equal(a, b) {
		t.Error("keystream not deterministic")
	}
	// Successive MACSize windows must differ (counter advances).
	if bytes.Equal(a[:20], a[20:40]) {
		t.Error("keystream blocks repeat")
	}
}

func TestConstantTimeEqual(t *testing.T) {
	if !constantTimeEqual([]byte{1, 2}, []byte{1, 2}) {
		t.Error("equal slices compare unequal")
	}
	if constantTimeEqual([]byte{1, 2}, []byte{1, 3}) {
		t.Error("unequal slices compare equal")
	}
	if constantTimeEqual([]byte{1}, []byte{1, 2}) {
		t.Error("length mismatch compares equal")
	}
}

// TestHMACRFC2202Vectors pins the implementation to the published
// HMAC-SHA1 test vectors (RFC 2202 §3, cases 1-3).
func TestHMACRFC2202Vectors(t *testing.T) {
	cases := []struct {
		key, data []byte
		want      string
	}{
		{bytes.Repeat([]byte{0x0b}, 20), []byte("Hi There"),
			"b617318655057264e28bc0b6fb378c8ef146be00"},
		{[]byte("Jefe"), []byte("what do ya want for nothing?"),
			"effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"},
		{bytes.Repeat([]byte{0xaa}, 20), bytes.Repeat([]byte{0xdd}, 50),
			"125d7342b9ac11cd91a39af48aa17b4f63f175d3"},
	}
	for i, c := range cases {
		got := HMAC(c.key, c.data)
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("case %d: %x, want %s", i+1, got, c.want)
		}
	}
}
