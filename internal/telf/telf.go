// Package telf implements TELF (Tiny ELF), the relocatable binary format
// for tasks on the simulated platform.
//
// The TyTAN prototype extends FreeRTOS with an ELF loader because ELF
// "supports relocatable binaries and encodes all information required
// for relocation in ELF file headers" (§4). TELF carries exactly that
// information and nothing else: a text section, a data section, a BSS
// size, a stack size, an entry point, and a relocation table.
//
// An image is linked at base 0. When loaded at physical address B, the
// loader lays the sections out contiguously:
//
//	B+0              text
//	B+len(text)      data
//	B+len(text+data) bss (zeroed)
//	...              stack (grows down from the end of the region)
//
// Every relocation identifies a 32-bit little-endian word inside text or
// data whose stored value is an image-relative offset; loading adds B to
// it, and position-independent measurement subtracts B again (see
// internal/loader and internal/trusted).
package telf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies a TELF image ("TELF" little-endian).
const Magic uint32 = 0x464C4554

// Version is the current format version.
const Version uint16 = 1

// RelocKind describes how a relocation fixup is applied. All current
// kinds patch a 32-bit absolute address; they differ in which
// instruction form contains the word, which affects the fixup cost the
// loader charges (cheap for data words, more expensive for immediates
// embedded in code — mirroring the spread between the "min" and "avg"
// columns of Table 5 in the paper).
type RelocKind uint8

const (
	// RelWord patches a bare 32-bit word (e.g. a .word label in .data,
	// or a jump table entry).
	RelWord RelocKind = iota
	// RelImm32 patches the immediate word of an LDI32 instruction.
	RelImm32
	// RelImm32Add patches an LDI32 immediate that carries an addend
	// (label+offset); the loader must re-derive the addend.
	RelImm32Add

	numRelocKinds
)

// String returns a short name for the relocation kind.
func (k RelocKind) String() string {
	switch k {
	case RelWord:
		return "word"
	case RelImm32:
		return "imm32"
	case RelImm32Add:
		return "imm32+add"
	default:
		return fmt.Sprintf("reloc(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined relocation kind.
func (k RelocKind) Valid() bool { return k < numRelocKinds }

// Reloc is one relocation entry. Offset is relative to the start of the
// image (text base); the addressed word must lie entirely within
// text+data.
type Reloc struct {
	Offset uint32
	Kind   RelocKind
}

// Image is a parsed (or under-construction) TELF image.
type Image struct {
	// Name is a short human-readable task name (max 31 bytes encoded).
	Name string
	// Entry is the entry point as an offset into Text. The EA-MPU
	// enforces that secure tasks are only ever entered here.
	Entry uint32
	// Text is the code section.
	Text []byte
	// Data is the initialized data section, placed directly after Text.
	Data []byte
	// BSSSize is the size in bytes of the zero-initialized section.
	BSSSize uint32
	// StackSize is the stack size in bytes the loader must reserve.
	StackSize uint32
	// Relocs lists the absolute-address fixups, sorted by Offset.
	Relocs []Reloc
}

// Errors returned by Decode and Validate.
var (
	ErrBadMagic   = errors.New("telf: bad magic")
	ErrBadVersion = errors.New("telf: unsupported version")
	ErrCorrupt    = errors.New("telf: corrupt image")
)

// Specific corruption classes. Each wraps ErrCorrupt, so existing
// errors.Is(err, ErrCorrupt) checks keep matching while callers that
// care (the loader's denial events, the linter) can name the exact
// structural defect.
var (
	ErrTruncated     = fmt.Errorf("%w: truncated", ErrCorrupt)
	ErrSizeMismatch  = fmt.Errorf("%w: section sizes disagree with image size", ErrCorrupt)
	ErrEntryRange    = fmt.Errorf("%w: entry point outside text", ErrCorrupt)
	ErrEntryAlign    = fmt.Errorf("%w: entry point not word-aligned", ErrCorrupt)
	ErrNameLong      = fmt.Errorf("%w: name too long", ErrCorrupt)
	ErrRelocKind     = fmt.Errorf("%w: unknown relocation kind", ErrCorrupt)
	ErrRelocAlign    = fmt.Errorf("%w: relocation offset not word-aligned", ErrCorrupt)
	ErrRelocRange    = fmt.Errorf("%w: relocation outside sections", ErrCorrupt)
	ErrRelocStraddle = fmt.Errorf("%w: relocation straddles the text/data boundary", ErrCorrupt)
	ErrRelocOrder    = fmt.Errorf("%w: relocation offsets not strictly increasing", ErrCorrupt)
)

// LoadSize returns the number of bytes of memory the image occupies once
// loaded: text + data + bss + stack.
func (im *Image) LoadSize() uint32 {
	return uint32(len(im.Text)) + uint32(len(im.Data)) + im.BSSSize + im.StackSize
}

// MeasuredSize returns the number of bytes covered by the RTM
// measurement: code, static data and the BSS layout (the paper measures
// "code, static data, and initial stack layout"; the stack contents are
// not part of the identity, only its size, which is hashed as part of
// the header).
func (im *Image) MeasuredSize() uint32 {
	return uint32(len(im.Text)) + uint32(len(im.Data))
}

// Validate checks structural invariants: entry inside text, relocation
// offsets word-aligned, inside text+data and not straddling the
// text/data boundary, known relocation kinds, and strictly increasing
// relocation offsets.
func (im *Image) Validate() error {
	if im.Entry >= uint32(len(im.Text)) && !(im.Entry == 0 && len(im.Text) == 0) {
		return fmt.Errorf("%w: entry %#x, text is %d bytes", ErrEntryRange, im.Entry, len(im.Text))
	}
	if im.Entry%4 != 0 {
		return fmt.Errorf("%w: entry %#x", ErrEntryAlign, im.Entry)
	}
	textEnd := uint32(len(im.Text))
	limit := textEnd + uint32(len(im.Data))
	var prev int64 = -1
	for i, r := range im.Relocs {
		if !r.Kind.Valid() {
			return fmt.Errorf("%w: reloc %d has kind %d", ErrRelocKind, i, uint8(r.Kind))
		}
		if r.Offset%4 != 0 {
			return fmt.Errorf("%w: reloc %d at %#x", ErrRelocAlign, i, r.Offset)
		}
		if r.Offset+4 > limit {
			return fmt.Errorf("%w: reloc %d at %#x, sections end at %#x", ErrRelocRange, i, r.Offset, limit)
		}
		if r.Offset < textEnd && r.Offset+4 > textEnd {
			return fmt.Errorf("%w: reloc %d at %#x, text ends at %#x", ErrRelocStraddle, i, r.Offset, textEnd)
		}
		if int64(r.Offset) <= prev {
			return fmt.Errorf("%w: reloc %d at %#x follows %#x", ErrRelocOrder, i, r.Offset, uint32(prev))
		}
		prev = int64(r.Offset)
	}
	if len(im.Name) > 31 {
		return fmt.Errorf("%w: %q is %d bytes, max 31", ErrNameLong, im.Name, len(im.Name))
	}
	return nil
}

// Encoded header layout (all little-endian):
//
//	off  size  field
//	0    4     magic
//	4    2     version
//	6    2     reserved (0)
//	8    32    name (NUL padded)
//	40   4     entry
//	44   4     text size
//	48   4     data size
//	52   4     bss size
//	56   4     stack size
//	60   4     reloc count
//	64   ...   text ‖ data ‖ relocs (5 bytes each: offset u32, kind u8)
const headerSize = 64

// relocEntrySize is the encoded size of one relocation entry.
const relocEntrySize = 5

// EncodedSize returns the size in bytes of the encoded image.
func (im *Image) EncodedSize() int {
	return headerSize + len(im.Text) + len(im.Data) + relocEntrySize*len(im.Relocs)
}

// Encode serializes the image. It returns an error if Validate fails.
func (im *Image) Encode() ([]byte, error) {
	if err := im.Validate(); err != nil {
		return nil, err
	}
	b := make([]byte, 0, im.EncodedSize())
	b = binary.LittleEndian.AppendUint32(b, Magic)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = binary.LittleEndian.AppendUint16(b, 0)
	var name [32]byte
	copy(name[:], im.Name)
	b = append(b, name[:]...)
	b = binary.LittleEndian.AppendUint32(b, im.Entry)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(im.Text)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(im.Data)))
	b = binary.LittleEndian.AppendUint32(b, im.BSSSize)
	b = binary.LittleEndian.AppendUint32(b, im.StackSize)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(im.Relocs)))
	b = append(b, im.Text...)
	b = append(b, im.Data...)
	for _, r := range im.Relocs {
		b = binary.LittleEndian.AppendUint32(b, r.Offset)
		b = append(b, byte(r.Kind))
	}
	return b, nil
}

// Decode parses an encoded image and validates it.
func Decode(b []byte) (*Image, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, need %d header bytes", ErrTruncated, len(b), headerSize)
	}
	if binary.LittleEndian.Uint32(b) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	name := b[8:40]
	n := 0
	for n < len(name) && name[n] != 0 {
		n++
	}
	im := &Image{
		Name:      string(name[:n]),
		Entry:     binary.LittleEndian.Uint32(b[40:]),
		BSSSize:   binary.LittleEndian.Uint32(b[52:]),
		StackSize: binary.LittleEndian.Uint32(b[56:]),
	}
	textSize := binary.LittleEndian.Uint32(b[44:])
	dataSize := binary.LittleEndian.Uint32(b[48:])
	relocCount := binary.LittleEndian.Uint32(b[60:])
	need := uint64(headerSize) + uint64(textSize) + uint64(dataSize) + uint64(relocCount)*relocEntrySize
	if uint64(len(b)) != need {
		return nil, fmt.Errorf("%w: %d bytes, header describes %d", ErrSizeMismatch, len(b), need)
	}
	p := uint32(headerSize)
	im.Text = append([]byte(nil), b[p:p+textSize]...)
	p += textSize
	im.Data = append([]byte(nil), b[p:p+dataSize]...)
	p += dataSize
	im.Relocs = make([]Reloc, relocCount)
	for i := range im.Relocs {
		im.Relocs[i].Offset = binary.LittleEndian.Uint32(b[p:])
		im.Relocs[i].Kind = RelocKind(b[p+4])
		p += relocEntrySize
	}
	if err := im.Validate(); err != nil {
		return nil, err
	}
	return im, nil
}
