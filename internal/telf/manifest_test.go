package telf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/hcrypto"
	"repro/internal/sha1"
)

func manifestImage(t *testing.T) *Image {
	t.Helper()
	im := &Image{
		Name:    "updtest",
		Entry:   0,
		Text:    []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08},
		Data:    []byte{0xAA, 0xBB, 0xCC, 0xDD},
		BSSSize: 8,
	}
	if err := im.Validate(); err != nil {
		t.Fatalf("fixture image invalid: %v", err)
	}
	return im
}

func signedPackage(t *testing.T, version uint64, key []byte) []byte {
	t.Helper()
	pkg, err := Sign(manifestImage(t), version, key)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	return pkg
}

func TestManifestRoundTrip(t *testing.T) {
	key := []byte("update-key")
	pkg := signedPackage(t, 7, key)

	if !IsSigned(pkg) {
		t.Fatalf("IsSigned = false on a signed package")
	}
	s, err := DecodeSigned(pkg)
	if err != nil {
		t.Fatalf("DecodeSigned: %v", err)
	}
	if s.Manifest.TaskVersion != 7 {
		t.Fatalf("TaskVersion = %d, want 7", s.Manifest.TaskVersion)
	}
	if err := s.Verify(key); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if s.Image.Name != "updtest" {
		t.Fatalf("inner image name = %q", s.Image.Name)
	}
	if !bytes.Equal(s.Image.Text, manifestImage(t).Text) {
		t.Fatalf("inner image text differs")
	}
	// Same bytes, wrong key: structurally fine, signature refused.
	if err := s.Verify([]byte("other-key")); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("Verify(wrong key) = %v, want ErrBadSignature", err)
	}
}

func TestManifestRawImageNotSigned(t *testing.T) {
	enc, err := manifestImage(t).Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if IsSigned(enc) {
		t.Fatalf("IsSigned = true on a raw TELF image")
	}
	if _, err := DecodeSigned(enc); !errors.Is(err, ErrManifestMagic) {
		t.Fatalf("DecodeSigned(raw image) = %v, want ErrManifestMagic", err)
	}
}

func TestManifestCorruptionSentinels(t *testing.T) {
	key := []byte("update-key")
	pkg := signedPackage(t, 3, key)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		want    error
		corrupt bool // must also satisfy errors.Is(err, ErrCorrupt)
	}{
		{
			name:    "truncated header",
			mutate:  func(b []byte) []byte { return b[:manifestHeaderSize-1] },
			want:    ErrManifestTruncated,
			corrupt: true,
		},
		{
			name: "bad version",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint16(b[4:], ManifestVersion+1)
				return b
			},
			want: ErrManifestVersion,
		},
		{
			name: "reserved nonzero",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint16(b[6:], 0x5A5A)
				return b
			},
			want:    ErrManifestReserved,
			corrupt: true,
		},
		{
			name: "payload size mismatch",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[16:], binary.LittleEndian.Uint32(b[16:])+4)
				return b
			},
			want:    ErrManifestSize,
			corrupt: true,
		},
		{
			name: "payload bit flip",
			mutate: func(b []byte) []byte {
				b[len(b)-1] ^= 0x40
				return b
			},
			want:    ErrManifestDigest,
			corrupt: true,
		},
		{
			name: "truncated payload",
			mutate: func(b []byte) []byte {
				return b[:len(b)-2]
			},
			want:    ErrManifestSize,
			corrupt: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), pkg...))
			_, err := DecodeSigned(b)
			if !errors.Is(err, tc.want) {
				t.Fatalf("DecodeSigned = %v, want %v", err, tc.want)
			}
			if tc.corrupt && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeSigned = %v, want it to wrap ErrCorrupt", err)
			}
			if !tc.corrupt && errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeSigned = %v, must not wrap ErrCorrupt", err)
			}
		})
	}
}

func TestManifestHeaderTamperChangesOutcome(t *testing.T) {
	key := []byte("update-key")
	pkg := signedPackage(t, 3, key)

	// Flip the task version in the header: digest still matches the
	// payload so decode succeeds, but the MAC covers the version and
	// must refuse it — this is exactly the forged-downgrade vector.
	forged := append([]byte(nil), pkg...)
	binary.LittleEndian.PutUint64(forged[8:], 99)
	s, err := DecodeSigned(forged)
	if err != nil {
		t.Fatalf("DecodeSigned(forged version): %v", err)
	}
	if s.Manifest.TaskVersion != 99 {
		t.Fatalf("TaskVersion = %d, want forged 99", s.Manifest.TaskVersion)
	}
	if err := s.Verify(key); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("Verify(forged version) = %v, want ErrBadSignature", err)
	}

	// Flip a MAC bit: decode succeeds (MAC is not structural), Verify refuses.
	macFlip := append([]byte(nil), pkg...)
	macFlip[40] ^= 0x01
	s2, err := DecodeSigned(macFlip)
	if err != nil {
		t.Fatalf("DecodeSigned(mac flip): %v", err)
	}
	if err := s2.Verify(key); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("Verify(mac flip) = %v, want ErrBadSignature", err)
	}
}

func TestManifestInnerImageErrorsPropagate(t *testing.T) {
	key := []byte("update-key")
	im := manifestImage(t)
	enc, err := im.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Break the inner TELF magic, then re-sign the broken payload so
	// digest and MAC are consistent: the manifest layer is happy and
	// the inner Decode error must surface.
	broken := append([]byte(nil), enc...)
	broken[0] ^= 0xFF
	pkg := resign(t, broken, 3, key)
	if _, err := DecodeSigned(pkg); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("DecodeSigned(broken inner) = %v, want ErrBadMagic", err)
	}
}

// resign wraps an arbitrary payload in a fresh, consistent manifest —
// the attacker-controlled path Sign refuses to produce.
func resign(t *testing.T, payload []byte, version uint64, key []byte) []byte {
	t.Helper()
	im := manifestImage(t)
	pkg, err := Sign(im, version, key)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	hdr := append([]byte(nil), pkg[:macedPrefixSize]...)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(payload)))
	d := sha1.Sum1(payload)
	copy(hdr[20:40], d[:])
	mac := hcrypto.HMAC(key, hdr)
	out := append(hdr, mac[:]...)
	return append(out, payload...)
}
