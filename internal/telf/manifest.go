package telf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/hcrypto"
	"repro/internal/sha1"
)

// Signed update packages. A TELF image by itself carries no provenance:
// the measured identity proves *what* is loaded, not *who* shipped it
// or *when*. Over-the-air update needs both, so an update package wraps
// an encoded image in a signed manifest:
//
//	off  size  field
//	0    4     manifest magic ("TYUP")
//	4    2     manifest version
//	6    2     reserved (0)
//	8    8     task version (monotonic, enforced by the update service)
//	16   4     payload size
//	20   20    payload digest (SHA-1 of the encoded TELF image)
//	40   20    MAC = HMAC(Ku, bytes[0:40])
//	60   ...   payload (the encoded TELF image)
//
// The MAC covers the header — magic through digest — and the digest
// covers the payload, so the MAC transitively authenticates the whole
// package and binds the task version to exactly one image. Ku is a
// provider-scoped update key derived from the platform key (see
// internal/trusted); the HMAC stands in for the signature the way it
// does for attestation quotes.
//
// DecodeSigned checks structure and digest (no key needed — corruption
// is detectable by anyone); SignedImage.Verify checks the MAC. The
// split matters for error taxonomy: a flipped payload bit is ErrCorrupt
// territory, a flipped MAC or a forged header is ErrBadSignature.

// ManifestMagic identifies an update package ("TYUP" little-endian) —
// deliberately distinct from Magic so a raw image is never mistaken for
// a signed package or vice versa.
const ManifestMagic uint32 = 0x50555954

// ManifestVersion is the current manifest format version.
const ManifestVersion uint16 = 1

// manifestHeaderSize is the encoded manifest size: the MACed prefix
// (40 bytes) plus the MAC itself.
const manifestHeaderSize = 40 + sha1.Size

// macedPrefixSize is how much of the header the MAC covers.
const macedPrefixSize = 40

// Manifest errors. The structural classes wrap ErrCorrupt so the
// existing errors.Is(err, ErrCorrupt) checks in the loader and the
// tooling keep matching; ErrBadSignature is deliberately *not* a
// corruption — the package may be perfectly well-formed and still not
// be from the task's provider.
var (
	ErrManifestMagic     = errors.New("telf: bad update-manifest magic")
	ErrManifestVersion   = errors.New("telf: unsupported update-manifest version")
	ErrManifestTruncated = fmt.Errorf("%w: update manifest truncated", ErrCorrupt)
	ErrManifestSize      = fmt.Errorf("%w: update-manifest payload size disagrees", ErrCorrupt)
	ErrManifestReserved  = fmt.Errorf("%w: update-manifest reserved field not zero", ErrCorrupt)
	ErrManifestDigest    = fmt.Errorf("%w: update-package payload digest mismatch", ErrCorrupt)
	ErrBadSignature      = errors.New("telf: update-manifest signature verification failed")
)

// Manifest is the parsed signed-manifest header of an update package.
type Manifest struct {
	// TaskVersion is the monotonic version the update service checks
	// against the sealed counter (rollback protection).
	TaskVersion uint64
	// Digest is the SHA-1 of the payload (the encoded TELF image).
	Digest sha1.Digest
	// MAC is HMAC(Ku, header prefix) — the package "signature".
	MAC sha1.Digest
}

// SignedImage is a decoded update package: the manifest, the inner
// image, and the raw bytes Verify re-checks the MAC over.
type SignedImage struct {
	Manifest Manifest
	Image    *Image

	prefix  [macedPrefixSize]byte
	payload []byte
}

// Payload returns the encoded inner image.
func (s *SignedImage) Payload() []byte { return s.payload }

// IsSigned reports whether b begins like an update package (so tooling
// can accept both raw images and signed packages without guessing).
func IsSigned(b []byte) bool {
	return len(b) >= 4 && binary.LittleEndian.Uint32(b) == ManifestMagic
}

// Sign encodes im and wraps it in a manifest for the given task version,
// MACed under key. The result decodes with DecodeSigned and verifies
// with Verify under the same key.
func Sign(im *Image, version uint64, key []byte) ([]byte, error) {
	payload, err := im.Encode()
	if err != nil {
		return nil, err
	}
	b := make([]byte, 0, manifestHeaderSize+len(payload))
	b = binary.LittleEndian.AppendUint32(b, ManifestMagic)
	b = binary.LittleEndian.AppendUint16(b, ManifestVersion)
	b = binary.LittleEndian.AppendUint16(b, 0)
	b = binary.LittleEndian.AppendUint64(b, version)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	digest := sha1.Sum1(payload)
	b = append(b, digest[:]...)
	mac := hcrypto.HMAC(key, b[:macedPrefixSize])
	b = append(b, mac[:]...)
	b = append(b, payload...)
	return b, nil
}

// DecodeSigned parses an update package: manifest structure, payload
// digest, and the inner TELF image. It does NOT check the MAC — anyone
// can detect corruption, but only a holder of the update key can judge
// authenticity; call Verify for that.
func DecodeSigned(b []byte) (*SignedImage, error) {
	if len(b) < manifestHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes, need %d header bytes", ErrManifestTruncated, len(b), manifestHeaderSize)
	}
	if binary.LittleEndian.Uint32(b) != ManifestMagic {
		return nil, ErrManifestMagic
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != ManifestVersion {
		return nil, fmt.Errorf("%w: %d", ErrManifestVersion, v)
	}
	if r := binary.LittleEndian.Uint16(b[6:]); r != 0 {
		return nil, fmt.Errorf("%w: %#x", ErrManifestReserved, r)
	}
	s := &SignedImage{}
	s.Manifest.TaskVersion = binary.LittleEndian.Uint64(b[8:])
	paySize := binary.LittleEndian.Uint32(b[16:])
	copy(s.Manifest.Digest[:], b[20:40])
	copy(s.Manifest.MAC[:], b[40:manifestHeaderSize])
	copy(s.prefix[:], b[:macedPrefixSize])
	payload := b[manifestHeaderSize:]
	if uint64(len(payload)) != uint64(paySize) {
		return nil, fmt.Errorf("%w: %d payload bytes, header describes %d", ErrManifestSize, len(payload), paySize)
	}
	if sha1.Sum1(payload) != s.Manifest.Digest {
		return nil, ErrManifestDigest
	}
	im, err := Decode(payload)
	if err != nil {
		return nil, err
	}
	s.payload = append([]byte(nil), payload...)
	s.Image = im
	return s, nil
}

// Verify checks the manifest MAC under the update key. The MAC covers
// the header prefix (magic through payload digest), and DecodeSigned
// already proved the digest matches the payload, so a passing Verify
// authenticates the task version and the image together.
func (s *SignedImage) Verify(key []byte) error {
	want := hcrypto.HMAC(key, s.prefix[:])
	if !bytes.Equal(want[:], s.Manifest.MAC[:]) {
		return ErrBadSignature
	}
	return nil
}
