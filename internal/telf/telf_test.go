package telf

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleImage() *Image {
	return &Image{
		Name:      "sensor",
		Entry:     4,
		Text:      []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		Data:      []byte{0xAA, 0xBB, 0xCC, 0xDD},
		BSSSize:   64,
		StackSize: 256,
		Relocs:    []Reloc{{Offset: 0, Kind: RelImm32}, {Offset: 12, Kind: RelWord}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	im := sampleImage()
	b, err := im.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != im.EncodedSize() {
		t.Errorf("encoded %d bytes, EncodedSize()=%d", len(b), im.EncodedSize())
	}
	out, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(im, out) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", out, im)
	}
}

func TestLoadAndMeasuredSize(t *testing.T) {
	im := sampleImage()
	if got, want := im.LoadSize(), uint32(12+4+64+256); got != want {
		t.Errorf("LoadSize() = %d, want %d", got, want)
	}
	if got, want := im.MeasuredSize(), uint32(16); got != want {
		t.Errorf("MeasuredSize() = %d, want %d", got, want)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Image){
		"entry outside text":    func(im *Image) { im.Entry = uint32(len(im.Text)) },
		"entry unaligned":       func(im *Image) { im.Entry = 2 },
		"reloc unaligned":       func(im *Image) { im.Relocs[0].Offset = 2 },
		"reloc outside":         func(im *Image) { im.Relocs[1].Offset = 16 },
		"reloc bad kind":        func(im *Image) { im.Relocs[0].Kind = 99 },
		"reloc order":           func(im *Image) { im.Relocs[1].Offset = 0 },
		"name too long":         func(im *Image) { im.Name = string(make([]byte, 32)) },
		"reloc straddles limit": func(im *Image) { im.Relocs[1].Offset = 14 },
	}
	for name, mutate := range cases {
		im := sampleImage()
		mutate(im)
		if err := im.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", name)
		}
		if _, err := im.Encode(); err == nil {
			t.Errorf("%s: Encode() = nil error, want error", name)
		}
	}
}

func TestValidateEmptyImage(t *testing.T) {
	im := &Image{StackSize: 128}
	if err := im.Validate(); err != nil {
		t.Errorf("empty image Validate() = %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	im := sampleImage()
	b, err := im.Encode()
	if err != nil {
		t.Fatal(err)
	}

	short := b[:10]
	if _, err := Decode(short); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short: err = %v, want ErrCorrupt", err)
	}

	badMagic := append([]byte(nil), b...)
	badMagic[0] = 'X'
	if _, err := Decode(badMagic); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: err = %v, want ErrBadMagic", err)
	}

	badVer := append([]byte(nil), b...)
	badVer[4] = 9
	if _, err := Decode(badVer); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: err = %v, want ErrBadVersion", err)
	}

	truncated := b[:len(b)-1]
	if _, err := Decode(truncated); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: err = %v, want ErrCorrupt", err)
	}

	padded := append(append([]byte(nil), b...), 0)
	if _, err := Decode(padded); !errors.Is(err, ErrCorrupt) {
		t.Errorf("padded: err = %v, want ErrCorrupt", err)
	}
}

func TestRelocKindString(t *testing.T) {
	if RelWord.String() != "word" || RelImm32.String() != "imm32" {
		t.Error("unexpected RelocKind names")
	}
	if RelocKind(42).Valid() {
		t.Error("RelocKind(42).Valid() = true")
	}
}

// randomImage builds a structurally valid random image for property
// testing.
func randomImage(r *rand.Rand) *Image {
	textWords := 1 + r.Intn(64)
	dataWords := r.Intn(32)
	im := &Image{
		Name:      "t",
		Entry:     uint32(r.Intn(textWords)) * 4,
		Text:      make([]byte, textWords*4),
		Data:      make([]byte, dataWords*4),
		BSSSize:   uint32(r.Intn(256)),
		StackSize: uint32(r.Intn(512)),
	}
	r.Read(im.Text)
	r.Read(im.Data)
	total := (textWords + dataWords)
	off := 0
	for off < total {
		if r.Intn(3) == 0 {
			im.Relocs = append(im.Relocs, Reloc{
				Offset: uint32(off) * 4,
				Kind:   RelocKind(r.Intn(int(numRelocKinds))),
			})
		}
		off += 1 + r.Intn(4)
	}
	return im
}

// TestRoundTripQuick property-tests that arbitrary valid images survive
// an encode/decode round trip byte-for-byte.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		im := randomImage(rand.New(rand.NewSource(seed)))
		b, err := im.Encode()
		if err != nil {
			return false
		}
		out, err := Decode(b)
		if err != nil {
			return false
		}
		b2, err := out.Encode()
		if err != nil {
			return false
		}
		return bytes.Equal(b, b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanics fuzzes Decode with arbitrary bytes: it must fail
// cleanly, never panic, on garbage input.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("Decode panicked on %x: %v", b, p)
			}
		}()
		Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeMutated flips random header bytes of a valid image; Decode
// must either fail or produce a Validate-clean image — never a corrupt
// one.
func TestDecodeMutated(t *testing.T) {
	im := sampleImage()
	b, err := im.Encode()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		m := append([]byte(nil), b...)
		m[r.Intn(headerSize)] ^= byte(1 << r.Intn(8))
		out, err := Decode(m)
		if err != nil {
			continue
		}
		if verr := out.Validate(); verr != nil {
			t.Fatalf("Decode accepted image failing Validate: %v", verr)
		}
	}
}

// TestTypedValidateErrors pins the specific sentinel each structural
// defect maps to, and that every one still matches ErrCorrupt (callers
// that only care about "corrupt" keep working).
func TestTypedValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Image)
		want   error
	}{
		{"entry outside text", func(im *Image) { im.Entry = uint32(len(im.Text)) }, ErrEntryRange},
		{"entry unaligned", func(im *Image) { im.Entry = 2 }, ErrEntryAlign},
		{"reloc unaligned", func(im *Image) { im.Relocs[0].Offset = 2 }, ErrRelocAlign},
		{"reloc outside", func(im *Image) { im.Relocs[1].Offset = 16 }, ErrRelocRange},
		{"reloc bad kind", func(im *Image) { im.Relocs[0].Kind = 99 }, ErrRelocKind},
		{"reloc order", func(im *Image) { im.Relocs[1].Offset = 0 }, ErrRelocOrder},
		{"name too long", func(im *Image) { im.Name = string(make([]byte, 32)) }, ErrNameLong},
		{"reloc straddles text/data", func(im *Image) {
			// Unpadded 10-byte text: an aligned reloc word at 8 covers
			// text[8:10] plus data[0:2].
			im.Entry = 0
			im.Text = im.Text[:10]
			im.Relocs = []Reloc{{Offset: 8, Kind: RelWord}}
		}, ErrRelocStraddle},
	}
	for _, tc := range cases {
		im := sampleImage()
		tc.mutate(im)
		err := im.Validate()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v does not wrap ErrCorrupt", tc.name, err)
		}
	}
}

// TestTypedDecodeErrors pins the sentinels for byte-level corruption.
func TestTypedDecodeErrors(t *testing.T) {
	im := sampleImage()
	b, err := im.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(b[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: err = %v, want ErrTruncated", err)
	}
	if _, err := Decode(b[:len(b)-1]); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("trailing byte cut: err = %v, want ErrSizeMismatch", err)
	}
	if _, err := Decode(append(append([]byte(nil), b...), 0)); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("padded: err = %v, want ErrSizeMismatch", err)
	}
}
