// Quickstart: boot a TyTAN platform, write a task in assembly, load it
// as a secure task, run the scheduler, and read what the task printed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
)

// A task is plain assembly. The TyTAN tool chain (internal/asm) turns
// it into a relocatable TELF image; the loader places it anywhere in
// task memory and fixes up the absolute addresses.
const taskSource = `
.task "greeter"
.entry main
.stack 128
.bss 28            ; mailbox space (every secure task reserves one)

.text
main:
    ldi32 r2, msg        ; absolute address -> relocated at load time
    ldi r3, 14           ; message length
next:
    ldb r1, [r2+0]       ; load one byte
    svc 5                ; print it on the UART
    addi r2, 1
    addi r3, -1
    cmpi r3, 0
    bne next
    svc 1                ; task exit

.data
msg:
    .byte 104, 101, 108, 108, 111, 32   ; "hello "
    .byte 102, 114, 111, 109, 32        ; "from "
    .byte 116, 50, 10                   ; "t2\n"
`

func main() {
	// Boot: machine, devices, RTOS, secure boot, EA-MPU on.
	platform, err := core.NewPlatform(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(platform.Describe())

	// Assemble and load. LoadTaskSync runs the full §4 sequence:
	// allocate → load+relocate → prepare stack → configure EA-MPU →
	// measure → schedule.
	image, err := asm.Assemble(taskSource)
	if err != nil {
		log.Fatal(err)
	}
	task, identity, err := platform.LoadTaskSync(image, core.Secure, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nloaded %q as secure task %d\n", image.Name, task.ID)
	fmt.Printf("measured identity (idt): %x\n", identity)

	// Run 10 ms of simulated time.
	if err := platform.Run(480_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuart output: %q\n", platform.Output())
	fmt.Printf("simulated cycles: %d\n", platform.Cycles())
}
