// Cruise control: the paper's automotive use case (Figure 2, Table 1).
//
// An embedded control unit runs two hard-real-time secure tasks at
// 1.5 kHz: t1 monitors the accelerator pedal and t0 runs the engine
// control law. When the driver activates adaptive cruise control, the
// radar-monitoring task t2 is loaded *at runtime*. Loading takes about
// 27.8 ms of work — many scheduling periods — yet t0 and t1 never miss
// a deadline, because every phase of loading (streaming, relocation,
// EA-MPU configuration, measurement) is interruptible.
//
//	go run ./examples/cruisecontrol
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/telf"
)

const period = 31_200 // sleep per activation; ≈1.5 kHz with overheads

func controlTask(name string, tag int) string {
	return fmt.Sprintf(`
.task "%s"
.entry main
.stack 192
.bss 28
.text
main:
    ldi32 r6, 0xF0000200   ; pedal sensor (MMIO)
    ldi32 r5, 0xF0000300   ; radar sensor (MMIO)
    ldi32 r4, 0xF0000500   ; engine actuator (MMIO)
loop:
    ld r0, [r6+0]          ; sample pedal
    ld r1, [r5+0]          ; sample radar
    add r0, r1             ; trivial control law
    ldi r2, %d
    st [r4+0], r2          ; command engine (tagged, timestamped)
    ldi r0, %d
    svc 2                  ; sleep one period
    jmp loop
`, name, tag, period)
}

func main() {
	platform, err := core.NewPlatform(core.Options{EngineHistory: 1 << 16})
	if err != nil {
		log.Fatal(err)
	}

	mustLoad := func(src string, prio int) {
		im, err := asm.Assemble(src)
		if err != nil {
			log.Fatal(err)
		}
		if _, _, err := platform.LoadTaskSync(im, core.Secure, prio); err != nil {
			log.Fatal(err)
		}
	}
	mustLoad(controlTask("t0-engine", 1), 5)
	mustLoad(controlTask("t1-pedal", 2), 5)
	fmt.Println("t0 (engine control) and t1 (pedal monitor) running at 1.5 kHz")

	window := uint64(64 * core.DefaultTickPeriod)
	run := func(label string, cycles uint64) (from, to uint64) {
		from = platform.Cycles()
		if err := platform.Run(cycles); err != nil {
			log.Fatal(err)
		}
		to = platform.Cycles()
		return
	}
	rate := func(tag int, from, to uint64) float64 {
		n := 0
		for _, c := range platform.Engine.Commands() {
			if int(c.Value) == tag && c.Cycle >= from && c.Cycle < to {
				n++
			}
		}
		return float64(n) / (float64(to-from) / machine.ClockHz) / 1000
	}

	f1, t1 := run("before", window)

	// Driver activates adaptive cruise control: load t2 on demand. The
	// image is padded so loading costs ≈27.8 ms of work like the paper's
	// radar task.
	t2img, err := asm.Assemble(controlTask("t2-radar", 3))
	if err != nil {
		log.Fatal(err)
	}
	t2img.Data = append(t2img.Data, make([]byte, 11_600)...)
	_ = telf.Image{} // (t2img is a *telf.Image)
	req := platform.LoadTaskAsync(t2img, core.Secure, 4)
	fmt.Println("\ndriver activated cruise control -> loading t2 (radar monitor) at runtime")

	f2 := platform.Cycles()
	for !req.Done() {
		if err := platform.Run(core.DefaultTickPeriod); err != nil {
			log.Fatal(err)
		}
	}
	if req.Err() != nil {
		log.Fatal(req.Err())
	}
	t2end := platform.Cycles()
	work := req.Breakdown.Total()
	fmt.Printf("t2 loaded: %.1f ms of work (%d cycles), identity %x\n",
		float64(work)/machine.ClockHz*1000, work, req.Identity())

	f3, t3 := run("after", window)

	fmt.Println("\nTable 1 (achieved activation rates):")
	fmt.Printf("%-20s %-10s %-10s %-10s\n", "", "t1", "t2", "t0")
	row := func(label string, from, to uint64, withT2 bool) {
		t2cell := "—"
		if withT2 {
			t2cell = fmt.Sprintf("%.2f kHz", rate(3, from, to))
		}
		fmt.Printf("%-20s %-10s %-10s %-10s\n", label,
			fmt.Sprintf("%.2f kHz", rate(2, from, to)), t2cell,
			fmt.Sprintf("%.2f kHz", rate(1, from, to)))
	}
	row("Before loading t2", f1, t1, false)
	row("While loading t2", f2, t2end, false)
	row("After loading t2", f3, t3, true)
	fmt.Println("\nt0 and t1 kept their deadlines through a multi-period load — the Table 1 result.")
}
