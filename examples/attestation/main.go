// Attestation: local and remote attestation of dynamically loaded
// tasks (§3 "Attestation").
//
// Two mutually distrusting stakeholders — a component supplier and the
// car manufacturer — each deploy a task on the same control unit. The
// manufacturer's backend remotely attests the supplier's task before
// trusting its output, and the supplier's task locally attests that the
// manufacturer's logger is present before sending it data.
//
//	go run ./examples/attestation
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/rtos"
	"repro/internal/trusted"
)

const supplierTask = `
.task "supplier-ecu"
.entry main
.stack 128
.bss 28
.text
main:
    ldi32 r6, 0xF0000200
loop:
    ld r0, [r6+0]
    ldi r0, 32000
    svc 2
    jmp loop
`

const oemLogger = `
.task "oem-logger"
.entry main
.stack 128
.bss 28
.text
main:
    svc 18        ; block until a message arrives
    jmp main
`

func main() {
	platform, err := core.NewPlatform(core.Options{Provider: "tier1-supplier"})
	if err != nil {
		log.Fatal(err)
	}

	supplierIm, err := asm.Assemble(supplierTask)
	if err != nil {
		log.Fatal(err)
	}
	loggerIm, err := asm.Assemble(oemLogger)
	if err != nil {
		log.Fatal(err)
	}

	supplier, supplierID, err := platform.LoadTaskSync(supplierIm, core.Secure, 3)
	if err != nil {
		log.Fatal(err)
	}
	_, loggerID, err := platform.LoadTaskSync(loggerIm, core.Secure, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("supplier task loaded, idt = %x\n", supplierID)
	fmt.Printf("oem logger loaded,    idt = %x\n", loggerID)

	// --- Remote attestation ------------------------------------------------
	// The manufacturer's backend knows the supplier's published binary
	// and the provisioned attestation key. It challenges with a fresh
	// nonce; the device's Remote Attest task MACs (idt ‖ nonce) under
	// Ka, which is derived from the platform key Kp that only the
	// trusted components can read.
	backend := platform.Provider("").Verifier()
	nonce := uint64(0xA5A5_0001)
	quote, err := platform.Provider("").Quote(supplier.ID, nonce)
	if err != nil {
		log.Fatal(err)
	}
	expected := trusted.IdentityOfImage(supplierIm)
	if err := backend.Verify(quote, expected, nonce); err != nil {
		log.Fatalf("backend rejected genuine task: %v", err)
	}
	fmt.Println("remote attestation: backend verified the supplier task ✔")

	// A forged quote (e.g. by the untrusted OS, which cannot read Ka)
	// does not verify.
	forged := quote
	forged.MAC[3] ^= 0xFF
	if err := backend.Verify(forged, expected, nonce); err != nil {
		fmt.Printf("remote attestation: forged quote rejected ✔ (%v)\n", err)
	} else {
		log.Fatal("forged quote accepted!")
	}

	// --- Local attestation --------------------------------------------------
	// On the device, idt doubles as identifier and attestation report:
	// the supplier task checks that a task with the logger's exact
	// identity is currently loaded before trusting it with data. Only
	// the RTM can write the registry, so the answer is authoritative.
	if platform.C.Attest.LocalAttest(loggerID.TruncatedID()) {
		fmt.Println("local attestation: oem logger is present with the expected identity ✔")
	} else {
		log.Fatal("logger not found")
	}

	// Unloading the logger invalidates its local attestation.
	loggerTCB := findTask(platform, "oem-logger")
	if err := platform.Unload(loggerTCB); err != nil {
		log.Fatal(err)
	}
	if !platform.C.Attest.LocalAttest(loggerID.TruncatedID()) {
		fmt.Println("local attestation: unloaded logger no longer attestable ✔")
	} else {
		log.Fatal("stale identity still attestable")
	}
}

func findTask(p *core.Platform, name string) rtos.TaskID {
	for _, t := range p.K.Tasks() {
		if t.Name == name {
			return t.ID
		}
	}
	log.Fatalf("task %q not found", name)
	return 0
}
