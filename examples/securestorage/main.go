// Secure storage: sealing data to a task's measured identity (§3
// "Secure storage").
//
// A metering task seals its calibration table; after the device
// "reboots" (unload + reload of the same binary) the same task unseals
// it. A different binary — even one byte different — cannot, and
// tampering with the stored blob is detected. This is the property
// Kt = HMAC(idt ‖ Kp) buys.
//
//	go run ./examples/securestorage
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/trusted"
)

const meterTask = `
.task "meter"
.entry main
.stack 128
.bss 28
.text
main:
    ldi32 r6, 0xF0000200
loop:
    ld r0, [r6+0]
    ldi r0, 32000
    svc 2
    jmp loop
`

func main() {
	platform, err := core.NewPlatform(core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	image, err := asm.Assemble(meterTask)
	if err != nil {
		log.Fatal(err)
	}
	meter, id, err := platform.LoadTaskSync(image, core.Secure, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meter loaded, identity %x\n", id)

	// Seal the calibration table under the meter's task key.
	calibration := []byte("gain=1.037 offset=-0.42 curve=[3,7,12]")
	const slot = 1
	if err := platform.Seal(meter.ID, slot, calibration); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed %d bytes into slot %d\n", len(calibration), slot)

	// Reboot: unload the task, reload the *same* binary. The new
	// instance has the same measured identity, hence the same Kt.
	if err := platform.Unload(meter.ID); err != nil {
		log.Fatal(err)
	}
	meter2, id2, err := platform.LoadTaskSync(image, core.Secure, 3)
	if err != nil {
		log.Fatal(err)
	}
	if id2 != id {
		log.Fatal("identity changed across reload")
	}
	got, err := platform.Unseal(meter2.ID, slot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reload: unsealed %q ✔\n", got)

	// An updated (different) binary loses access: its identity differs,
	// so its task key differs.
	updated := *image
	updated.Text = append([]byte(nil), image.Text...)
	updated.Text[0] ^= 0x04 // one-bit "update"
	impostor, impID, err := platform.LoadTaskSync(&updated, core.Secure, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("updated binary loaded, identity %x\n", impID)
	if _, err := platform.Unseal(impostor.ID, slot); errors.Is(err, trusted.ErrSealDenied) {
		fmt.Println("updated binary cannot unseal the old data ✔ (identity mismatch)")
	} else {
		log.Fatalf("cross-identity unseal: %v", err)
	}

	// Tampering with the blob at rest is detected by the MAC.
	if !platform.C.Storage.TamperSlot(slot) {
		log.Fatal("tamper failed")
	}
	if _, err := platform.Unseal(meter2.ID, slot); errors.Is(err, trusted.ErrSealDenied) {
		fmt.Println("tampered blob rejected ✔ (authentication failed)")
	} else {
		log.Fatalf("tampered unseal: %v", err)
	}
}
