// Fleet attestation: a backend verifies a whole fleet of TyTAN devices
// over the network.
//
// Three simulated devices each boot, load the same published firmware
// task, and serve attestation challenges over TCP (the internal/remote
// wire protocol). One of them, however, runs a tampered build. The
// backend walks the fleet, challenges every device with a fresh nonce,
// and flags the compromised one — the workflow a car manufacturer would
// run across electronic control units in the field.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/telf"
	"repro/internal/trusted"
)

const firmware = `
.task "ecu-fw"
.entry main
.stack 192
.bss 28
.text
main:
    ldi32 r6, 0xF0000200
loop:
    ld r0, [r6+0]
    ldi r0, 32000
    svc 2
    jmp loop
`

func main() {
	published, err := asm.Assemble(firmware)
	if err != nil {
		log.Fatal(err)
	}
	expected := trusted.IdentityOfImage(published)
	fmt.Printf("backend: published firmware identity %x\n\n", expected)

	// Bring up the fleet: device 2 runs a tampered build.
	var addrs []string
	for i := 0; i < 3; i++ {
		image := published
		if i == 2 {
			tampered := *published
			tampered.Text = append([]byte(nil), published.Text...)
			tampered.Text[8] ^= 0x01
			image = &tampered
		}
		addr, err := startDevice(fmt.Sprintf("ecu-%d", i), image)
		if err != nil {
			log.Fatal(err)
		}
		addrs = append(addrs, addr)
	}

	// The backend challenges every device.
	verifier := trusted.NewVerifier(core.DevKey, "fleet")
	client := remote.NewClient(verifier, "fleet", remote.ClientOptions{})
	healthy, compromised := 0, 0
	for i, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			log.Fatal(err)
		}
		nonce := uint64(0xF1EE7000) + uint64(i)
		quote, err := client.Attest(conn, expected, nonce)
		conn.Close()
		if err != nil {
			fmt.Printf("ecu-%d at %s: COMPROMISED (%v)\n", i, addr, err)
			compromised++
			continue
		}
		fmt.Printf("ecu-%d at %s: healthy (mac %x…)\n", i, addr, quote.MAC[:6])
		healthy++
	}
	fmt.Printf("\nfleet status: %d healthy, %d compromised\n", healthy, compromised)
	if compromised != 1 {
		log.Fatal("expected exactly one compromised device")
	}
}

// startDevice boots one simulated device, loads its firmware, and
// serves attestation challenges on a loopback port.
func startDevice(name string, image *telf.Image) (string, error) {
	platform, err := core.NewPlatform(core.Options{Provider: "fleet"})
	if err != nil {
		return "", err
	}
	if _, _, err := platform.LoadTaskSync(image, core.Secure, 3); err != nil {
		return "", err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	fmt.Printf("%s: booted, serving attestation on %s\n", name, l.Addr())
	srv := remote.NewServer(remote.ComponentsAttestor{C: platform.C}, remote.ServerOptions{})
	go srv.Serve(l)
	return l.Addr().String(), nil
}
