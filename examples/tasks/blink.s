; blink.s — the "hello world" of embedded: toggle a value on the engine
; actuator once per scheduling period. Assemble and run with:
;
;   go run ./cmd/tytan-asm examples/tasks/blink.s
;   go run ./cmd/tytan-sim examples/tasks/blink.telf
;
.task "blink"
.entry main
.stack 128
.bss 28               ; IPC mailbox space (secure-task convention)

.equ ENGINE, 0xF0000500
.equ PERIOD, 32000    ; one 1.5 kHz tick at 48 MHz

.text
main:
    li   r4, ENGINE
    clr  r2           ; blink state
loop:
    ldi  r3, 1
    xor  r2, r3       ; toggle bit 0
    st   [r4+0], r2
    li   r0, PERIOD
    svc  2            ; sleep one period
    jmp  loop
