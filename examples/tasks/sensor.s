; sensor.s — sample the pedal and radar sensors each period, command
; the engine with their sum, and print a dot every 16 activations.
;
;   go run ./cmd/tytan-asm examples/tasks/sensor.s
;   go run ./cmd/tytan-sim -ms 50 examples/tasks/sensor.telf
;
.task "sensor"
.entry main
.stack 192
.bss 28

.equ PEDAL,  0xF0000200
.equ RADAR,  0xF0000300
.equ ENGINE, 0xF0000500
.equ PERIOD, 32000

.text
main:
    li   r6, PEDAL
    li   r5, RADAR
    li   r4, ENGINE
    clr  r2                ; activation counter
loop:
    ld   r0, [r6+0]        ; pedal position
    ld   r1, [r5+0]        ; radar distance
    add  r0, r1
    st   [r4+0], r0        ; engine command
    inc  r2
    ldi  r3, 15
    and  r3, r2
    cmpi r3, 0
    bnz  sleep             ; every 16th activation...
    ldi  r1, 46            ; '.'
    svc  5                 ; ...print a dot
sleep:
    li   r0, PERIOD
    svc  2
    jmp  loop
