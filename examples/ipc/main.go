// Secure IPC: two secure tasks exchange authenticated messages through
// the IPC proxy (§3/§4 "Secure inter-process communication"), entirely
// at the ISA level — the sender raises a software interrupt with the
// message in registers, the proxy writes message and sender identity
// into the receiver's mailbox, and the EA-MPU guarantees nobody else
// could have.
//
// The task developer provisions the sender with the receiver's identity
// (footnote 3 of the paper): here the host embeds idR into the sender's
// data section before loading.
//
//	go run ./examples/ipc
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/trusted"
)

// The receiver blocks on SVC 18; when a message arrives it prints the
// payload byte and the low byte of the sender's identity, clears the
// mailbox flag, and waits again.
const receiverSource = `
.task "display"
.entry main
.stack 192
.bss 28
.text
main:
    svc 23             ; r0 = own mailbox address
    mov r6, r0
loop:
    svc 18             ; block until a message is delivered
    ld r1, [r6+16]     ; payload word 0
    svc 5              ; print payload byte
    ldi r2, 0
    st [r6+0], r2      ; clear mailbox flag (ready for next message)
    jmp loop
`

// The sender loads idR from its data section (provisioned by the
// developer), sends three characters, then exits.
const senderSource = `
.task "keypad"
.entry main
.stack 192
.bss 28
.text
main:
    ldi32 r5, peer     ; provisioned receiver identity
    ld r1, [r5+0]      ; idR lo
    ld r2, [r5+4]      ; idR hi
    ldi r3, 4          ; 4 payload bytes
    ldi r4, 107        ; 'k'
    svc 16             ; async send
    ld r1, [r5+0]
    ld r2, [r5+4]
    ldi r3, 4
    ldi r4, 101        ; 'e'
    svc 17             ; synchronous send (proxy branches to receiver)
    ld r1, [r5+0]
    ld r2, [r5+4]
    ldi r3, 4
    ldi r4, 121        ; 'y'
    svc 16
    svc 1              ; exit
.data
peer:
    .word 0            ; patched with idR lo before loading
    .word 0            ; patched with idR hi
`

func main() {
	platform, err := core.NewPlatform(core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	recvIm, err := asm.Assemble(receiverSource)
	if err != nil {
		log.Fatal(err)
	}
	receiver, recvID, err := platform.LoadTaskSync(recvIm, core.Secure, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("receiver %q loaded, identity %x\n", recvIm.Name, recvID)

	// Provision the sender with idR: the developer bakes the truncated
	// identity into the binary's data section.
	sendIm, err := asm.Assemble(senderSource)
	if err != nil {
		log.Fatal(err)
	}
	trunc := recvID.TruncatedID()
	binary.LittleEndian.PutUint32(sendIm.Data[0:], uint32(trunc))
	binary.LittleEndian.PutUint32(sendIm.Data[4:], uint32(trunc>>32))

	sender, sendID, err := platform.LoadTaskSync(sendIm, core.Secure, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sender %q loaded, identity %x\n", sendIm.Name, sendID)
	_ = sender

	// Let them talk.
	if err := platform.Run(2_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("receiver printed: %q\n", platform.Output())
	fmt.Printf("proxy deliveries: %d\n", platform.C.Proxy.Sends())

	// The security property behind it: nothing but the proxy can write
	// the receiver's mailbox. Try it from the OS's protection context.
	e, _ := platform.C.RTM.LookupByTask(receiver.ID)
	box, _ := trusted.MailboxAddr(e)
	var osErr error
	platform.M.WithExecContext(0x2000 /* OS code region */, func() {
		osErr = platform.M.Write32(box, 0xBAD)
	})
	if osErr != nil {
		fmt.Printf("OS forging a mailbox write: DENIED ✔ (%v)\n", osErr)
	} else {
		log.Fatal("OS wrote the mailbox!")
	}
}
