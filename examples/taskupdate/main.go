// Task update: replacing a running secure task with a new binary
// *without a reboot* — the paper's §8 future work ("a mechanism to
// update tasks at runtime ... to meet the high availability
// requirements of embedded applications"), implemented on top of the
// dynamic-loading machinery.
//
// A metering task v1 runs and seals its odometer state. An update to
// v2 is applied while the system keeps scheduling: the replacement is
// loaded, measured and isolated in the background; the switch-over
// (mailbox transfer + sealed-state migration + schedule) takes a
// bounded, sub-millisecond window.
//
//	go run ./examples/taskupdate
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/machine"
)

func meter(version int) string {
	return fmt.Sprintf(`
.task "meter"
.entry main
.stack 192
.bss 28
.text
main:
    ldi r1, %d          ; ASCII digit of the version
loop:
    svc 5               ; print version digit each activation
    ldi r0, 30000
    svc 2
    jmp loop
`, '0'+version)
}

func main() {
	platform, err := core.NewPlatform(core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	v1, err := asm.Assemble(meter(1))
	if err != nil {
		log.Fatal(err)
	}
	v2src := meter(2)
	v2, err := asm.Assemble(v2src)
	if err != nil {
		log.Fatal(err)
	}

	old, oldID, err := platform.LoadTaskSync(v1, core.Secure, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meter v1 running, identity %x\n", oldID)

	// The task accumulates sealed state.
	if err := platform.Seal(old.ID, 1, []byte("odometer=123456km")); err != nil {
		log.Fatal(err)
	}
	if err := platform.Run(10 * core.DefaultTickPeriod); err != nil {
		log.Fatal(err)
	}
	before := len(platform.Output())

	// Apply the update, migrating storage slot 1 to the new identity.
	res, err := platform.UpdateTask(old.ID, v2, []uint32{1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("updated to v2, identity %x\n", res.NewIdentity)
	fmt.Printf("switch-over downtime: %d cycles (%.0f µs at %d MHz)\n",
		res.DowntimeCycles,
		float64(machine.CyclesToNanos(res.DowntimeCycles))/1000,
		machine.ClockHz/1_000_000)

	if err := platform.Run(10 * core.DefaultTickPeriod); err != nil {
		log.Fatal(err)
	}
	after := platform.Output()[before:]
	fmt.Printf("output before update ends with v1 digits: %q\n", platform.Output()[:before])
	fmt.Printf("output after update is all v2 digits:     %q\n", after)

	// The migrated state unseals under the *new* identity.
	state, err := platform.Unseal(res.New.ID, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v2 unsealed migrated state: %q ✔\n", state)

	// And the old identity is gone from the platform.
	if _, err := platform.Identity(old.ID); err != nil {
		fmt.Println("v1 no longer present ✔")
	}
}
